// Variable-rate compressed video (paper Section 6.2).
//
// "Variable rate compression of video (analogous to silence elimination in
// audio), such as differencing between frames, can result in varying but
// smaller sizes of video frames, thereby yielding better bounds for
// granularity and scattering."
//
// VbrVideoSource models a differencing encoder: every group-of-pictures
// starts with a full intra frame at the nominal (peak) size, followed by
// delta frames whose size depends on scene activity. Scene activity is a
// deterministic function of (seed, time): quiet stretches produce tiny
// deltas, action stretches approach the intra size. Every frame remains
// regenerable from (seed, index) for read-back verification.

#ifndef VAFS_SRC_MEDIA_VBR_SOURCE_H_
#define VAFS_SRC_MEDIA_VBR_SOURCE_H_

#include <cstdint>
#include <vector>

#include "src/media/media.h"
#include "src/media/sources.h"
#include "src/util/prng.h"

namespace vafs {

struct VbrProfile {
  int64_t group_of_pictures = 15;   // frames per intra-coded frame
  double delta_mean_fraction = 0.2; // mean delta size as a fraction of intra size
  double scene_change_per_sec = 0.3;// rate of activity level changes
};

class VbrVideoSource {
 public:
  // `profile.bits_per_unit` is the intra (peak) frame size.
  VbrVideoSource(const MediaProfile& profile, const VbrProfile& vbr, uint64_t seed);

  const MediaProfile& profile() const { return profile_; }
  int64_t peak_frame_bytes() const { return peak_frame_bytes_; }

  // Size in bytes of frame `index` (deterministic).
  int64_t FrameBytes(int64_t index) const;

  // Payload of frame `index` (deterministic, FrameBytes(index) long).
  std::vector<uint8_t> FramePayload(int64_t index) const;

  // Next frame in capture order.
  VideoFrame NextFrame();

  int64_t frames_produced() const { return next_index_; }

  // Mean frame size over the first `frames` frames (for rate planning).
  double MeanFrameBytes(int64_t frames) const;

 private:
  // Activity level in [0, 1] for the scene containing `index`.
  double ActivityAt(int64_t index) const;

  MediaProfile profile_;
  VbrProfile vbr_;
  uint64_t seed_;
  int64_t peak_frame_bytes_;
  int64_t next_index_ = 0;
};

// Block-size statistics of a recorded VBR strand, and the read-ahead that
// restores strict continuity despite the size variation: with transfer
// budgeted at the mean block size, a burst of oversized blocks can put the
// stream behind by at most `worst_burst_excess_bits / R_dt` seconds, which
// `required_read_ahead` buffered blocks absorb.
struct VbrStrandStats {
  double mean_block_bits = 0.0;
  int64_t peak_block_bits = 0;
  // Largest cumulative excess of actual over mean bits across any block
  // window (the burst a read-ahead must cover).
  double worst_burst_excess_bits = 0.0;
  // Blocks of read-ahead that cover the worst burst at the given transfer
  // rate and block playback duration.
  int64_t RequiredReadAhead(double transfer_rate_bits_per_sec,
                            double block_duration_sec) const;
};

// Computes the statistics from per-block bit counts in playback order.
VbrStrandStats AnalyzeVbrBlocks(const std::vector<int64_t>& block_bits);

}  // namespace vafs

#endif  // VAFS_SRC_MEDIA_VBR_SOURCE_H_
