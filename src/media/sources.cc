#include "src/media/sources.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/util/units.h"

namespace vafs {

VideoSource::VideoSource(const MediaProfile& profile, uint64_t seed)
    : profile_(profile), frame_bytes_(BitsToBytesCeil(profile.bits_per_unit)), seed_(seed) {
  assert(profile_.medium == Medium::kVideo);
  assert(frame_bytes_ > 0);
}

std::vector<uint8_t> VideoSource::FramePayload(int64_t index) const {
  // Payload bytes come from a SplitMix64 stream keyed by (seed, index):
  // cheap, deterministic and unique per frame.
  std::vector<uint8_t> payload(static_cast<size_t>(frame_bytes_));
  uint64_t state = seed_ ^ (0x632be59bd9b4e019ULL * static_cast<uint64_t>(index + 1));
  size_t i = 0;
  while (i < payload.size()) {
    uint64_t word = SplitMix64(state);
    for (int b = 0; b < 8 && i < payload.size(); ++b, ++i) {
      payload[i] = static_cast<uint8_t>(word >> (8 * b));
    }
  }
  return payload;
}

VideoFrame VideoSource::NextFrame() {
  VideoFrame frame;
  frame.index = next_index_;
  frame.payload = FramePayload(next_index_);
  ++next_index_;
  return frame;
}

AudioSource::AudioSource(const MediaProfile& profile, const SpeechProfile& speech, uint64_t seed)
    : profile_(profile),
      speech_(speech),
      script_prng_(seed),
      jitter_prng_(seed ^ 0x5eed5eed5eed5eedULL) {
  assert(profile_.medium == Medium::kAudio);
}

void AudioSource::ExtendScriptTo(int64_t position) {
  while (segment_ends_.empty() || segment_ends_.back() <= position) {
    const bool next_is_silence = (segment_ends_.size() % 2) == 1;
    const double mean_sec =
        next_is_silence ? speech_.silence_mean_sec : speech_.talk_spurt_mean_sec;
    // Exponential duration with the configured mean, floored at 10 ms so
    // segments are never degenerate.
    const double u = std::max(script_prng_.NextDouble(), 1e-12);
    const double duration_sec = std::max(0.010, -mean_sec * std::log(u));
    const int64_t samples = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(duration_sec * profile_.units_per_sec)));
    const int64_t prev_end = segment_ends_.empty() ? 0 : segment_ends_.back();
    segment_ends_.push_back(prev_end + samples);
  }
}

bool AudioSource::IsScriptedSilence(int64_t position) const {
  assert(position >= 0);
  assert(!segment_ends_.empty() && position < segment_ends_.back());
  auto it = std::upper_bound(segment_ends_.begin(), segment_ends_.end(), position);
  const size_t segment = static_cast<size_t>(it - segment_ends_.begin());
  return (segment % 2) == 1;
}

std::vector<uint8_t> AudioSource::NextSamples(int64_t count) {
  assert(count > 0);
  ExtendScriptTo(next_index_ + count - 1);
  std::vector<uint8_t> samples(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    const int64_t position = next_index_ + i;
    const bool silent = IsScriptedSilence(position);
    const uint8_t amplitude = silent ? speech_.noise_amplitude : speech_.speech_amplitude;
    // Triangle-ish waveform plus jitter keeps the energy well separated
    // between speech and silence without needing floating-point audio.
    const int64_t phase = position % 64;
    const int64_t tri = phase < 32 ? phase : 64 - phase;  // 0..32
    const int64_t wave = (tri - 16) * amplitude / 16;
    const int64_t jitter =
        amplitude == 0 ? 0 : jitter_prng_.NextInRange(-amplitude / 8 - 1, amplitude / 8 + 1);
    const int64_t value = 128 + wave + jitter;
    samples[static_cast<size_t>(i)] = static_cast<uint8_t>(std::clamp<int64_t>(value, 0, 255));
  }
  next_index_ += count;
  return samples;
}

}  // namespace vafs
