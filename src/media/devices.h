// Display and capture device models.
//
// The continuity requirement (paper Section 3.1) says media data must be
// available at the display device at or before the moment its playback is
// due. PlaybackConsumer checks exactly that: the storage manager reports
// when each block became ready (transferred and, for the sequential
// architecture, decoded), and the consumer compares against the block's
// playback deadline, accounting for startup (anti-jitter) delay and for
// glitches shifting subsequent deadlines. It also tracks device buffer
// occupancy so the buffering analyses of Section 3.3.2 can be validated.
//
// CaptureProducer is the recording-side dual: frames arrive from the
// camera at the recording rate into a fixed pool of device buffers, and a
// buffer is recycled only once its block has been written to disk; the
// model reports overflows when writing falls behind capture.

#ifndef VAFS_SRC_MEDIA_DEVICES_H_
#define VAFS_SRC_MEDIA_DEVICES_H_

#include <cstdint>
#include <vector>

#include "src/util/time.h"

namespace vafs {

// Consumes equal-duration media blocks against real-time deadlines.
class PlaybackConsumer {
 public:
  // `block_duration`: playback duration of one block (q / R in usec).
  // `start_time`: when the PLAY request was issued.
  // `startup_delay`: anti-jitter delay before the first deadline.
  PlaybackConsumer(SimDuration block_duration, SimTime start_time, SimDuration startup_delay);

  // Reports that the next block (in playback order) became ready at
  // `ready_time`. Times must be non-decreasing across calls.
  void BlockReady(SimTime ready_time);

  // Number of blocks whose readiness missed their playback deadline.
  int64_t violations() const { return violations_; }

  // Sum of all tardiness (how late past the deadline ready blocks were).
  SimDuration total_tardiness() const { return total_tardiness_; }

  // Playback deadline of the next not-yet-ready block.
  SimTime next_deadline() const { return next_deadline_; }

  int64_t blocks_ready() const { return blocks_ready_; }

  // Largest number of blocks simultaneously buffered at the device
  // (ready, and playback not yet finished).
  int64_t max_buffered_blocks() const { return max_buffered_; }

  // Instant the last block finishes playing.
  SimTime playback_end() const;

  // Blocks buffered (ready, playback not finished) at time `t`; `t` must
  // not precede the last reported ready time.
  int64_t BufferedAt(SimTime t) const;

  // Earliest instant after `t` at which a buffered block finishes playing
  // (freeing a device buffer), or -1 if nothing is pending.
  SimTime NextDrainAfter(SimTime t) const;

 private:
  SimDuration block_duration_;
  SimTime next_deadline_;
  int64_t blocks_ready_ = 0;
  int64_t violations_ = 0;
  SimDuration total_tardiness_ = 0;
  int64_t max_buffered_ = 0;
  // End-of-playback instants of blocks already ready, in order; a prefix
  // pointer tracks how many have drained by the latest ready time.
  std::vector<SimTime> play_ends_;
  size_t drained_ = 0;
};

// Produces equal-duration media blocks into a bounded buffer pool.
class CaptureProducer {
 public:
  // `block_duration`: capture duration of one block.
  // `buffer_count`: device buffers available for captured-but-unwritten
  // blocks.
  CaptureProducer(SimDuration block_duration, SimTime start_time, int64_t buffer_count);

  // Capture completion instant of block `index` (the block may be written
  // to disk from then on).
  SimTime CaptureEnd(int64_t index) const;

  // Reports that the next block (in capture order) finished its disk write
  // at `write_end`. Returns true if the block was captured without the
  // pool overflowing; false if capture had to drop data because all
  // buffers were still waiting on writes.
  bool BlockWritten(SimTime write_end);

  int64_t overflows() const { return overflows_; }
  int64_t blocks_written() const { return blocks_written_; }

 private:
  SimDuration block_duration_;
  SimTime start_time_;
  int64_t buffer_count_;
  int64_t blocks_written_ = 0;
  int64_t overflows_ = 0;
  std::vector<SimTime> write_ends_;
};

}  // namespace vafs

#endif  // VAFS_SRC_MEDIA_DEVICES_H_
