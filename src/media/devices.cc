#include "src/media/devices.h"

#include <algorithm>
#include <cassert>

namespace vafs {

PlaybackConsumer::PlaybackConsumer(SimDuration block_duration, SimTime start_time,
                                   SimDuration startup_delay)
    : block_duration_(block_duration), next_deadline_(start_time + startup_delay) {
  assert(block_duration > 0);
  assert(startup_delay >= 0);
}

void PlaybackConsumer::BlockReady(SimTime ready_time) {
  SimTime play_start = next_deadline_;
  if (ready_time > next_deadline_) {
    // Continuity violation: the viewer sees a glitch. Playback of this
    // block begins when it arrives, and all later deadlines shift.
    ++violations_;
    total_tardiness_ += ready_time - next_deadline_;
    play_start = ready_time;
  }
  play_ends_.push_back(play_start + block_duration_);
  next_deadline_ = play_start + block_duration_;
  ++blocks_ready_;

  // Occupancy at this instant: blocks ready whose playback has not yet
  // finished. play_ends_ is non-decreasing, so a prefix pointer suffices.
  while (drained_ < play_ends_.size() && play_ends_[drained_] <= ready_time) {
    ++drained_;
  }
  const int64_t buffered = static_cast<int64_t>(play_ends_.size() - drained_);
  max_buffered_ = std::max(max_buffered_, buffered);
}

int64_t PlaybackConsumer::BufferedAt(SimTime t) const {
  const auto first_undrained =
      std::upper_bound(play_ends_.begin(), play_ends_.end(), t);
  return static_cast<int64_t>(play_ends_.end() - first_undrained);
}

SimTime PlaybackConsumer::NextDrainAfter(SimTime t) const {
  const auto it = std::upper_bound(play_ends_.begin(), play_ends_.end(), t);
  return it == play_ends_.end() ? -1 : *it;
}

SimTime PlaybackConsumer::playback_end() const {
  return play_ends_.empty() ? next_deadline_ : play_ends_.back();
}

CaptureProducer::CaptureProducer(SimDuration block_duration, SimTime start_time,
                                 int64_t buffer_count)
    : block_duration_(block_duration), start_time_(start_time), buffer_count_(buffer_count) {
  assert(block_duration > 0);
  assert(buffer_count > 0);
}

SimTime CaptureProducer::CaptureEnd(int64_t index) const {
  return start_time_ + (index + 1) * block_duration_;
}

bool CaptureProducer::BlockWritten(SimTime write_end) {
  const int64_t index = blocks_written_;
  write_ends_.push_back(write_end);
  ++blocks_written_;

  // The capture of block `index + buffer_count_` begins at
  // CaptureEnd(index + buffer_count_ - 1); it needs the buffer this block
  // occupied, which frees at write_end. If the write finished later, the
  // camera had nowhere to put incoming data.
  const SimTime reuse_needed_at = CaptureEnd(index + buffer_count_ - 1);
  if (write_end > reuse_needed_at) {
    ++overflows_;
    return false;
  }
  return true;
}

}  // namespace vafs
