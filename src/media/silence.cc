#include "src/media/silence.h"

namespace vafs {

double SilenceDetector::AverageEnergy(std::span<const uint8_t> samples) {
  if (samples.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (uint8_t sample : samples) {
    const double deviation = static_cast<double>(sample) - 128.0;
    sum += deviation * deviation;
  }
  return sum / static_cast<double>(samples.size());
}

}  // namespace vafs
