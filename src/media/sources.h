// Synthetic media sources.
//
// The paper's testbed captured live NTSC video and telephone audio; we have
// no capture hardware, so these generators produce deterministic synthetic
// payloads with the same sizes and rates (DESIGN.md, substitution table).
// The audio source additionally scripts an energy profile alternating
// speech and silence so that silence detection has realistic material.

#ifndef VAFS_SRC_MEDIA_SOURCES_H_
#define VAFS_SRC_MEDIA_SOURCES_H_

#include <cstdint>
#include <vector>

#include "src/media/media.h"
#include "src/util/prng.h"

namespace vafs {

// One captured video frame.
struct VideoFrame {
  int64_t index = 0;
  std::vector<uint8_t> payload;
};

// Produces fixed-size frames whose bytes are a deterministic function of
// (seed, frame index), so any frame can be regenerated for verification.
class VideoSource {
 public:
  VideoSource(const MediaProfile& profile, uint64_t seed);

  const MediaProfile& profile() const { return profile_; }
  int64_t frame_bytes() const { return frame_bytes_; }

  // Next frame in capture order.
  VideoFrame NextFrame();

  // Regenerates the payload of an arbitrary frame (for read-back checks).
  std::vector<uint8_t> FramePayload(int64_t index) const;

  int64_t frames_produced() const { return next_index_; }

 private:
  MediaProfile profile_;
  int64_t frame_bytes_;
  uint64_t seed_;
  int64_t next_index_ = 0;
};

// Scripted speech/silence alternation for the audio source.
struct SpeechProfile {
  double talk_spurt_mean_sec = 1.2;   // mean length of a speech burst
  double silence_mean_sec = 0.6;      // mean length of a pause
  uint8_t speech_amplitude = 90;      // peak deviation from the midpoint during speech
  uint8_t noise_amplitude = 2;        // residual noise during silence
};

// Produces 8-bit unsigned audio samples (midpoint 128) in caller-sized
// chunks, alternating speech bursts and silences with exponentially
// distributed durations.
class AudioSource {
 public:
  AudioSource(const MediaProfile& profile, const SpeechProfile& speech, uint64_t seed);

  const MediaProfile& profile() const { return profile_; }

  // Next `count` samples in capture order.
  std::vector<uint8_t> NextSamples(int64_t count);

  // True if the sample at `position` (absolute index) falls in a scripted
  // silence segment. Usable only for positions already generated.
  bool IsScriptedSilence(int64_t position) const;

  int64_t samples_produced() const { return next_index_; }

 private:
  void ExtendScriptTo(int64_t position);

  MediaProfile profile_;
  SpeechProfile speech_;
  // Separate generators for the segment script and the per-sample jitter:
  // content must not depend on how the caller chunks NextSamples.
  Prng script_prng_;
  Prng jitter_prng_;
  int64_t next_index_ = 0;
  // Script: alternating segment boundaries. segment_ends_[i] is the first
  // sample index NOT in segment i; segment i is silence iff i is odd
  // (scripts always start with speech).
  std::vector<int64_t> segment_ends_;
};

}  // namespace vafs

#endif  // VAFS_SRC_MEDIA_SOURCES_H_
