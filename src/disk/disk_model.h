// Parametric disk timing model.
//
// The paper's continuity analysis consumes three hardware quantities: the
// seek time between block positions, the rotational latency, and the data
// transfer rate R_dt. This model exposes exactly those, computed from a
// classical disk description (cylinders, surfaces, sectors per track, RPM,
// single-cylinder and full-stroke seek times).
//
// Seek is modeled as the usual concave curve: a fixed arm settle cost plus
// a component proportional to the square root of the cylinder distance,
// calibrated so that a 1-cylinder seek costs `min_seek` and a full-stroke
// seek costs `max_seek`. Rotational latency policy is selectable: the
// analytic model uses averages (paper Section 3), worst-case bounds use a
// full rotation, and simulations may draw uniformly at random.

#ifndef VAFS_SRC_DISK_DISK_MODEL_H_
#define VAFS_SRC_DISK_DISK_MODEL_H_

#include <cstdint>

#include "src/util/time.h"
#include "src/util/units.h"

namespace vafs {

// Arm seek-time curve shape. Real drives are concave (sqrt-like); the
// linear option matches the additive-seek assumption behind the paper's
// editing copy bounds (Eqs. 19-20) and is used by those experiments.
enum class SeekCurve {
  kSqrt,
  kLinear,
};

// Physical description of a disk. Defaults approximate a late-1980s
// workstation drive of the kind in the paper's testbed (PC-AT local disk).
struct DiskParameters {
  int64_t cylinders = 1400;
  int64_t surfaces = 8;             // read/write heads, one track per surface per cylinder
  int64_t sectors_per_track = 35;
  int64_t bytes_per_sector = 512;
  double rpm = 3600.0;
  double min_seek_ms = 4.0;         // single-cylinder seek
  double max_seek_ms = 35.0;        // full-stroke seek
  SeekCurve seek_curve = SeekCurve::kSqrt;

  int64_t TotalSectors() const { return cylinders * surfaces * sectors_per_track; }
  int64_t SectorsPerCylinder() const { return surfaces * sectors_per_track; }
  int64_t CapacityBytes() const { return TotalSectors() * bytes_per_sector; }
};

// Cylinder/surface/sector coordinates of a logical sector.
struct Chs {
  int64_t cylinder;
  int64_t surface;
  int64_t sector;
};

class DiskModel {
 public:
  explicit DiskModel(const DiskParameters& params);

  const DiskParameters& params() const { return params_; }

  // --- Geometry -----------------------------------------------------------

  // Maps a logical sector number (0-based, cylinder-major) to CHS.
  Chs SectorToChs(int64_t sector) const;

  // Cylinder holding a logical sector.
  int64_t SectorToCylinder(int64_t sector) const;

  // --- Timing -------------------------------------------------------------

  // Arm movement time between two cylinders. Zero for a zero-distance seek.
  SimDuration SeekTime(int64_t from_cylinder, int64_t to_cylinder) const;

  // Seek time as a function of cylinder distance.
  SimDuration SeekTimeForDistance(int64_t distance) const;

  // One full platter rotation.
  SimDuration RotationTime() const;

  // Expected rotational latency (half a rotation).
  SimDuration AverageRotationalLatency() const { return RotationTime() / 2; }

  // Worst-case rotational latency (a full rotation).
  SimDuration WorstRotationalLatency() const { return RotationTime(); }

  // Time to transfer `sectors` contiguous sectors once positioned.
  SimDuration TransferTime(int64_t sectors) const;

  // Sustained media transfer rate in bits/second (the paper's R_dt).
  double TransferRateBitsPerSec() const;

  // The paper's l_seek^max: worst-case positioning cost between two
  // arbitrary blocks (full-stroke seek plus worst rotational latency).
  SimDuration MaxAccessGap() const;

  // Positioning cost (seek + average latency) between two sectors; this is
  // the realized scattering gap between consecutive strand blocks.
  SimDuration AccessGap(int64_t from_sector, int64_t to_sector) const;

  // --- Inverse timing (for the allocator) ----------------------------------

  // Largest cylinder distance whose seek plus average rotational latency
  // fits within `gap`. Returns -1 if even a zero-distance reposition
  // (pure latency) exceeds `gap`.
  int64_t MaxCylinderDistanceForGap(SimDuration gap) const;

 private:
  DiskParameters params_;
  SimDuration rotation_usec_;
  SimDuration sector_usec_;      // time for one sector to pass under the head
  double seek_base_usec_;        // settle component
  double seek_sqrt_coeff_usec_;  // sqrt(distance) component
};

}  // namespace vafs

#endif  // VAFS_SRC_DISK_DISK_MODEL_H_
