// Multi-head disk array for the paper's concurrent retrieval architecture.
//
// Section 3.1 (Figure 3) analyzes retrieval with p concurrent disk
// accesses, as provided by a RAID-like array. DiskArray models p identical
// member disks; a batch of p block reads issued together is served in
// parallel and completes when the slowest member finishes. Consecutive
// blocks of a strand are assigned to members round-robin, so a group of p
// successive strand blocks always spans all members.
//
// Fault behaviour: a batch is issued to every member even when some of
// them fault — the members run in parallel, so one bad platter cannot call
// the others off. ReadBatch/WriteBatch therefore report a per-request
// BatchOutcome instead of aborting on the first member error; only
// malformed batches (unknown member, two requests on one member) fail the
// call as a whole. Member fault schedules are decorrelated by deriving
// each member's injector seed from the array seed and the member index.

#ifndef VAFS_SRC_DISK_DISK_ARRAY_H_
#define VAFS_SRC_DISK_DISK_ARRAY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/disk/disk.h"
#include "src/util/result.h"
#include "src/util/time.h"

namespace vafs {

class DiskArray {
 public:
  // An array of `members` disks, each with the given geometry.
  DiskArray(const DiskParameters& member_params, int members, DiskOptions options = DiskOptions());

  int members() const { return static_cast<int>(disks_.size()); }
  const DiskModel& member_model() const { return disks_.front()->model(); }
  Disk& member(int index) { return *disks_[static_cast<size_t>(index)]; }

  // Member disk that stores the `block_index`-th block of a strand.
  int MemberForBlock(int64_t block_index) const {
    return static_cast<int>(block_index % members());
  }

  struct BatchRequest {
    int member;            // which disk serves this block
    int64_t start_sector;  // extent on that member
    int64_t sectors;
  };

  // Fate of one request within a batch. A faulted request still consumed
  // its member's mechanism for `service` microseconds (0 when the member
  // was down and never moved).
  struct MemberOutcome {
    Status status = Status::Ok();
    SimDuration service = 0;
  };

  struct BatchOutcome {
    // Parallel completion: max over members of their service times,
    // including the mechanical time of faulted requests — the batch is not
    // done until the slowest arm stops, successful or not.
    SimDuration completion_time = 0;
    std::vector<MemberOutcome> per_request;  // one entry per batch request

    bool AllOk() const {
      for (const MemberOutcome& outcome : per_request) {
        if (!outcome.status.ok()) {
          return false;
        }
      }
      return true;
    }
    int64_t FailedCount() const {
      int64_t failed = 0;
      for (const MemberOutcome& outcome : per_request) {
        if (!outcome.status.ok()) {
          ++failed;
        }
      }
      return failed;
    }
  };

  // Issues the batch concurrently (at most one request per member). Every
  // request is attempted; per-request fates land in the outcome. The call
  // itself only fails on a malformed batch. Data is read into `out[i]` for
  // request i when non-null (left empty for faulted requests).
  Result<BatchOutcome> ReadBatch(const std::vector<BatchRequest>& batch,
                                 std::vector<std::vector<uint8_t>>* out);

  // Parallel write counterpart; `data[i]` is the payload of request i.
  Result<BatchOutcome> WriteBatch(const std::vector<BatchRequest>& batch,
                                  const std::vector<std::vector<uint8_t>>& data);

  // Whole-member failure (e.g. a dead spindle). While failed, every
  // request routed to the member returns kIoError with zero service time.
  void FailMember(int index) { member(index).set_failed(true); }
  void ReviveMember(int index) { member(index).set_failed(false); }
  bool member_failed(int index) { return member(index).failed(); }

  // Aggregate transfer rate (members * per-member R_dt), the figure the
  // paper's HDTV feasibility argument sweeps.
  double AggregateTransferRateBitsPerSec() const;

 private:
  Status ValidateBatch(const std::vector<BatchRequest>& batch) const;

  std::vector<std::unique_ptr<Disk>> disks_;
};

}  // namespace vafs

#endif  // VAFS_SRC_DISK_DISK_ARRAY_H_
