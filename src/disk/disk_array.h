// Multi-head disk array for the paper's concurrent retrieval architecture.
//
// Section 3.1 (Figure 3) analyzes retrieval with p concurrent disk
// accesses, as provided by a RAID-like array. DiskArray models p identical
// member disks; a batch of p block reads issued together is served in
// parallel and completes when the slowest member finishes. Consecutive
// blocks of a strand are assigned to members round-robin, so a group of p
// successive strand blocks always spans all members.
//
// Fault behaviour: a batch is issued to every member even when some of
// them fault — the members run in parallel, so one bad platter cannot call
// the others off. ReadBatch/WriteBatch therefore report a per-request
// BatchOutcome instead of aborting on the first member error; only
// malformed batches (unknown member, two requests on one member) fail the
// call as a whole. Member fault schedules are decorrelated by deriving
// each member's injector seed from the array seed and the member index.
//
// Wall-clock execution (DESIGN.md section 12): with set_worker_pool, the
// requests of a batch run as real parallel tasks — one task per member —
// joined at a barrier before the call returns. The one-request-per-member
// rule that ValidateBatch enforces is what makes this safe without locks:
// each task exclusively owns its member Disk (arm state, sector store,
// fault injector are all per member), its own output slot and its own
// MemberOutcome, so tasks share no mutable state. Member trace emissions
// are buffered per request and replayed in batch order at the barrier, so
// the trace stream, completion_time (= max over members, Eq. 11) and all
// simulated-time results are byte-identical for any worker count.

#ifndef VAFS_SRC_DISK_DISK_ARRAY_H_
#define VAFS_SRC_DISK_DISK_ARRAY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/disk/disk.h"
#include "src/util/result.h"
#include "src/util/time.h"

namespace vafs {

class WorkerPool;

class DiskArray {
 public:
  // An array of `members` disks, each with the given geometry.
  DiskArray(const DiskParameters& member_params, int members, DiskOptions options = DiskOptions());

  int members() const { return static_cast<int>(disks_.size()); }
  const DiskModel& member_model() const { return disks_.front()->model(); }
  Disk& member(int index) { return *disks_[static_cast<size_t>(index)]; }

  // Member disk that stores the `block_index`-th block of a strand.
  int MemberForBlock(int64_t block_index) const {
    return static_cast<int>(block_index % members());
  }

  struct BatchRequest {
    int member;            // which disk serves this block
    int64_t start_sector;  // extent on that member
    int64_t sectors;
  };

  // Fate of one request within a batch. A faulted request still consumed
  // its member's mechanism for `service` microseconds (0 when the member
  // was down and never moved).
  struct MemberOutcome {
    Status status = Status::Ok();
    SimDuration service = 0;
    // CRC-64 of the payload moved by this request, computed inside the
    // member's task when set_checksum_payloads(true); 0 otherwise (or when
    // the request faulted / carried no data).
    uint64_t payload_crc = 0;
  };

  struct BatchOutcome {
    // Parallel completion: max over members of their service times,
    // including the mechanical time of faulted requests — the batch is not
    // done until the slowest arm stops, successful or not.
    SimDuration completion_time = 0;
    std::vector<MemberOutcome> per_request;  // one entry per batch request

    bool AllOk() const {
      for (const MemberOutcome& outcome : per_request) {
        if (!outcome.status.ok()) {
          return false;
        }
      }
      return true;
    }
    int64_t FailedCount() const {
      int64_t failed = 0;
      for (const MemberOutcome& outcome : per_request) {
        if (!outcome.status.ok()) {
          ++failed;
        }
      }
      return failed;
    }
  };

  // Issues the batch concurrently (at most one request per member). Every
  // request is attempted; per-request fates land in the outcome. The call
  // itself only fails on a malformed batch. Data is read into `out[i]` for
  // request i when non-null (left empty for faulted requests).
  Result<BatchOutcome> ReadBatch(const std::vector<BatchRequest>& batch,
                                 std::vector<std::vector<uint8_t>>* out);

  // Pooled-payload variant: request i's data lands in `*pages[i]`, a
  // caller-owned buffer (typically a PagePool page). The buffer is resized
  // to the transfer's byte count, which allocates nothing when its capacity
  // already suffices — the allocation-free read path of the 20k-stream
  // rounds (DESIGN.md section 15). An empty `pages` (or a null entry)
  // skips the payload for all (or that) request.
  Result<BatchOutcome> ReadBatchInto(const std::vector<BatchRequest>& batch,
                                     const std::vector<std::vector<uint8_t>*>& pages);

  // Parallel write counterpart; `data[i]` is the payload of request i.
  Result<BatchOutcome> WriteBatch(const std::vector<BatchRequest>& batch,
                                  const std::vector<std::vector<uint8_t>>& data);

  // Whole-member failure (e.g. a dead spindle). While failed, every
  // request routed to the member returns kIoError with zero service time.
  void FailMember(int index) { member(index).set_failed(true); }
  void ReviveMember(int index) { member(index).set_failed(false); }
  bool member_failed(int index) { return member(index).failed(); }

  // Aggregate transfer rate (members * per-member R_dt), the figure the
  // paper's HDTV feasibility argument sweeps.
  double AggregateTransferRateBitsPerSec() const;

  // Wall-clock parallelism: when set (non-owning; must outlive the array),
  // batch requests run as one task per member on the pool, joined before
  // the call returns. Null (the default) or a 1-worker pool executes the
  // batch inline — the sequential reference every parallel run must match
  // byte for byte.
  void set_worker_pool(WorkerPool* pool) { pool_ = pool; }
  WorkerPool* worker_pool() const { return pool_; }

  // When true, each request's task also computes the CRC-64 of the bytes
  // it moved into MemberOutcome::payload_crc. This is real per-task CPU
  // work (the simulated mechanics cost nanoseconds of host time), so it is
  // both an end-to-end integrity check and the load that makes wall-clock
  // parallelism measurable. Requires retain_data on the members to see
  // non-empty payloads.
  void set_checksum_payloads(bool on) { checksum_payloads_ = on; }
  bool checksum_payloads() const { return checksum_payloads_; }

 private:
  // Rejecting two requests on one member is not a modeling nicety: it is
  // the data-ownership rule of the parallel engine. One request per member
  // means one task per Disk, so tasks never share arm state, stores or
  // fault injectors and the wave needs no locks. Callers with deeper
  // queues (the scheduler's C-SCAN member queues) issue one wave per queue
  // depth instead.
  Status ValidateBatch(const std::vector<BatchRequest>& batch) const;

  // Shared execution engine for Read/WriteBatch: redirects member traces
  // into per-request buffers, runs `serve(i)` for every request (on the
  // pool when configured, inline otherwise), then at the barrier restores
  // the sinks, replays the buffers in batch order and folds
  // completion_time = max over members.
  void DispatchBatch(const std::vector<BatchRequest>& batch,
                     const std::function<void(size_t)>& serve, BatchOutcome* outcome);

  std::vector<std::unique_ptr<Disk>> disks_;
  WorkerPool* pool_ = nullptr;
  bool checksum_payloads_ = false;
};

}  // namespace vafs

#endif  // VAFS_SRC_DISK_DISK_ARRAY_H_
