// Multi-head disk array for the paper's concurrent retrieval architecture.
//
// Section 3.1 (Figure 3) analyzes retrieval with p concurrent disk
// accesses, as provided by a RAID-like array. DiskArray models p identical
// member disks; a batch of p block reads issued together is served in
// parallel and completes when the slowest member finishes. Consecutive
// blocks of a strand are assigned to members round-robin, so a group of p
// successive strand blocks always spans all members.

#ifndef VAFS_SRC_DISK_DISK_ARRAY_H_
#define VAFS_SRC_DISK_DISK_ARRAY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/disk/disk.h"
#include "src/util/result.h"
#include "src/util/time.h"

namespace vafs {

class DiskArray {
 public:
  // An array of `members` disks, each with the given geometry.
  DiskArray(const DiskParameters& member_params, int members, DiskOptions options = DiskOptions());

  int members() const { return static_cast<int>(disks_.size()); }
  const DiskModel& member_model() const { return disks_.front()->model(); }
  Disk& member(int index) { return *disks_[static_cast<size_t>(index)]; }

  // Member disk that stores the `block_index`-th block of a strand.
  int MemberForBlock(int64_t block_index) const {
    return static_cast<int>(block_index % members());
  }

  struct BatchRequest {
    int member;            // which disk serves this block
    int64_t start_sector;  // extent on that member
    int64_t sectors;
  };

  // Issues the batch concurrently (at most one request per member) and
  // returns the parallel completion time: max over members of their
  // individual service times. Data is read into `out[i]` for request i
  // when non-null.
  Result<SimDuration> ReadBatch(const std::vector<BatchRequest>& batch,
                                std::vector<std::vector<uint8_t>>* out);

  // Parallel write counterpart; `data[i]` is the payload of request i.
  Result<SimDuration> WriteBatch(const std::vector<BatchRequest>& batch,
                                 const std::vector<std::vector<uint8_t>>& data);

  // Aggregate transfer rate (members * per-member R_dt), the figure the
  // paper's HDTV feasibility argument sweeps.
  double AggregateTransferRateBitsPerSec() const;

 private:
  Status ValidateBatch(const std::vector<BatchRequest>& batch) const;

  std::vector<std::unique_ptr<Disk>> disks_;
};

}  // namespace vafs

#endif  // VAFS_SRC_DISK_DISK_ARRAY_H_
