#include "src/disk/disk_model.h"

#include <cassert>
#include <cmath>

namespace vafs {

DiskModel::DiskModel(const DiskParameters& params) : params_(params) {
  assert(params_.cylinders > 0);
  assert(params_.surfaces > 0);
  assert(params_.sectors_per_track > 0);
  assert(params_.bytes_per_sector > 0);
  assert(params_.rpm > 0);
  assert(params_.min_seek_ms >= 0);
  assert(params_.max_seek_ms >= params_.min_seek_ms);

  rotation_usec_ = SecondsToUsec(60.0 / params_.rpm);
  sector_usec_ = rotation_usec_ / params_.sectors_per_track;

  // Calibrate the curve so that seek(1) = min_seek and
  // seek(cylinders - 1) = max_seek. Single-cylinder disks degenerate to a
  // constant model. For kSqrt: seek(d) = base + coeff * sqrt(d); for
  // kLinear: seek(d) = base + coeff * d.
  const double min_usec = params_.min_seek_ms * 1e3;
  const double max_usec = params_.max_seek_ms * 1e3;
  const double full_stroke = static_cast<double>(params_.cylinders - 1);
  if (full_stroke >= 2.0) {
    const double span = params_.seek_curve == SeekCurve::kSqrt
                            ? std::sqrt(full_stroke) - 1.0
                            : full_stroke - 1.0;
    seek_sqrt_coeff_usec_ = (max_usec - min_usec) / span;
    seek_base_usec_ = min_usec - seek_sqrt_coeff_usec_;
    if (seek_base_usec_ < 0) {
      // Keep seek(1) exact and non-negative base by folding into the
      // coefficient; this only matters for extreme parameter choices.
      seek_base_usec_ = 0;
      seek_sqrt_coeff_usec_ = min_usec;
    }
  } else {
    seek_sqrt_coeff_usec_ = 0;
    seek_base_usec_ = min_usec;
  }
}

Chs DiskModel::SectorToChs(int64_t sector) const {
  assert(sector >= 0 && sector < params_.TotalSectors());
  const int64_t per_cylinder = params_.SectorsPerCylinder();
  Chs chs;
  chs.cylinder = sector / per_cylinder;
  const int64_t within = sector % per_cylinder;
  chs.surface = within / params_.sectors_per_track;
  chs.sector = within % params_.sectors_per_track;
  return chs;
}

int64_t DiskModel::SectorToCylinder(int64_t sector) const {
  return sector / params_.SectorsPerCylinder();
}

SimDuration DiskModel::SeekTimeForDistance(int64_t distance) const {
  if (distance <= 0) {
    return 0;
  }
  const double scaled = params_.seek_curve == SeekCurve::kSqrt
                            ? std::sqrt(static_cast<double>(distance))
                            : static_cast<double>(distance);
  const double usec = seek_base_usec_ + seek_sqrt_coeff_usec_ * scaled;
  return static_cast<SimDuration>(std::llround(usec));
}

SimDuration DiskModel::SeekTime(int64_t from_cylinder, int64_t to_cylinder) const {
  const int64_t distance =
      from_cylinder > to_cylinder ? from_cylinder - to_cylinder : to_cylinder - from_cylinder;
  return SeekTimeForDistance(distance);
}

SimDuration DiskModel::RotationTime() const { return rotation_usec_; }

SimDuration DiskModel::TransferTime(int64_t sectors) const {
  assert(sectors >= 0);
  return sectors * sector_usec_;
}

double DiskModel::TransferRateBitsPerSec() const {
  const double bytes_per_rotation =
      static_cast<double>(params_.sectors_per_track * params_.bytes_per_sector);
  const double rotations_per_sec = params_.rpm / 60.0;
  return bytes_per_rotation * rotations_per_sec * kBitsPerByte;
}

SimDuration DiskModel::MaxAccessGap() const {
  return SeekTimeForDistance(params_.cylinders - 1) + WorstRotationalLatency();
}

SimDuration DiskModel::AccessGap(int64_t from_sector, int64_t to_sector) const {
  return SeekTime(SectorToCylinder(from_sector), SectorToCylinder(to_sector)) +
         AverageRotationalLatency();
}

int64_t DiskModel::MaxCylinderDistanceForGap(SimDuration gap) const {
  const SimDuration budget = gap - AverageRotationalLatency();
  if (budget < 0) {
    return -1;
  }
  // SeekTimeForDistance is monotone; binary search the largest distance
  // that fits. Distances range over [0, cylinders - 1].
  int64_t lo = 0;
  int64_t hi = params_.cylinders - 1;
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo + 1) / 2;
    if (SeekTimeForDistance(mid) <= budget) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

}  // namespace vafs
