#include "src/disk/fault_injector.h"

#include <algorithm>

namespace vafs {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kBadSector:
      return "bad_sector";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultOptions options)
    : options_(std::move(options)),
      prng_(options_.seed),
      shred_prng_(options_.seed ^ 0x746f726e'77726974ULL) {}

FaultKind FaultInjector::Decide(double rate, int64_t start_sector, int64_t sectors,
                                int64_t* transient_counter) {
  if (IsBad(start_sector, sectors)) {
    ++bad_sector_hits_;
    return FaultKind::kBadSector;
  }
  // The stream is only consulted when a transient fault is possible, so a
  // rate-zero injector stays bit-identical to having none at all.
  if (rate > 0.0 && prng_.NextDouble() < rate) {
    ++*transient_counter;
    return FaultKind::kTransient;
  }
  return FaultKind::kNone;
}

FaultKind FaultInjector::OnRead(int64_t start_sector, int64_t sectors) {
  return Decide(options_.read_fault_rate, start_sector, sectors, &transient_read_faults_);
}

FaultKind FaultInjector::OnWrite(int64_t start_sector, int64_t sectors) {
  return Decide(options_.write_fault_rate, start_sector, sectors, &transient_write_faults_);
}

CrashVerdict FaultInjector::OnWriteCrashCheck(int64_t sectors) {
  CrashVerdict verdict;
  if (powered_off_) {
    verdict.power_cut = true;
    return verdict;
  }
  if (options_.crash_after_sectors < 0 ||
      sectors_written_ + sectors <= options_.crash_after_sectors) {
    sectors_written_ += sectors;
    return verdict;
  }
  // The budget expires inside this write: a prefix lands, then the rail
  // drops. With torn writes a seeded subset of the remainder lands too
  // (the drive reordered sectors within the request).
  verdict.power_cut = true;
  verdict.prefix_sectors = options_.crash_after_sectors - sectors_written_;
  if (options_.torn_writes) {
    verdict.shred.resize(static_cast<size_t>(sectors - verdict.prefix_sectors));
    for (size_t i = 0; i < verdict.shred.size(); ++i) {
      verdict.shred[i] = shred_prng_.NextDouble() < 0.5;
    }
  }
  sectors_written_ = options_.crash_after_sectors;
  powered_off_ = true;
  ++power_cuts_;
  return verdict;
}

void FaultInjector::ArmPowerCut(int64_t after_sectors, bool torn) {
  options_.crash_after_sectors = after_sectors;
  options_.torn_writes = torn;
  sectors_written_ = 0;
}

void FaultInjector::PowerRestore() {
  powered_off_ = false;
  options_.crash_after_sectors = -1;
  sectors_written_ = 0;
}

void FaultInjector::MarkBad(int64_t start_sector, int64_t sectors) {
  options_.bad_ranges.push_back(BadRange{start_sector, sectors});
}

void FaultInjector::ClearBad(int64_t start_sector, int64_t sectors) {
  std::erase_if(options_.bad_ranges, [&](const BadRange& range) {
    return range.Overlaps(start_sector, sectors);
  });
}

bool FaultInjector::IsBad(int64_t start_sector, int64_t sectors) const {
  return std::any_of(options_.bad_ranges.begin(), options_.bad_ranges.end(),
                     [&](const BadRange& range) { return range.Overlaps(start_sector, sectors); });
}

}  // namespace vafs
