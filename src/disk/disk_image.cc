#include "src/disk/disk_image.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace vafs {

namespace {

constexpr char kMagic[8] = {'V', 'A', 'F', 'S', 'I', 'M', 'G', '1'};
constexpr uint32_t kVersion = 1;
constexpr int64_t kHeaderBytes = 4096;

struct ImageHeader {
  char magic[8];
  uint32_t version;
  uint32_t bytes_per_sector;
  uint64_t total_sectors;
};
static_assert(sizeof(ImageHeader) <= kHeaderBytes, "header must fit its reserved page");

int64_t BitmapBytes(int64_t total_sectors) {
  const int64_t raw = (total_sectors + 7) / 8;
  return (raw + kHeaderBytes - 1) / kHeaderBytes * kHeaderBytes;  // 4 KiB-rounded
}

std::string Errno(const std::string& what) { return what + ": " + std::strerror(errno); }

}  // namespace

std::unique_ptr<DiskImage> DiskImage::Open(const std::string& path, int64_t total_sectors,
                                           int64_t bytes_per_sector, bool truncate,
                                           std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  auto fail = [error](const std::string& why) -> std::unique_ptr<DiskImage> {
    if (error != nullptr) {
      *error = why;
    }
    return nullptr;
  };
  if (total_sectors <= 0 || bytes_per_sector <= 0) {
    return fail("image geometry must be positive");
  }
  const int64_t bitmap_bytes = BitmapBytes(total_sectors);
  const int64_t file_bytes = kHeaderBytes + bitmap_bytes + total_sectors * bytes_per_sector;

  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0), 0644);
  if (fd < 0) {
    return fail(Errno("open " + path));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const std::string why = Errno("fstat " + path);
    ::close(fd);
    return fail(why);
  }
  const bool fresh = st.st_size == 0;
  if (fresh) {
    if (::ftruncate(fd, file_bytes) != 0) {
      const std::string why = Errno("ftruncate " + path);
      ::close(fd);
      return fail(why);
    }
  } else if (st.st_size != file_bytes) {
    ::close(fd);
    return fail("image " + path + " is " + std::to_string(st.st_size) + " bytes, geometry needs " +
                std::to_string(file_bytes));
  }

  void* mapping =
      ::mmap(nullptr, static_cast<size_t>(file_bytes), PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  // The fd is only needed to establish the mapping.
  ::close(fd);
  if (mapping == MAP_FAILED) {
    return fail(Errno("mmap " + path));
  }

  uint8_t* base = static_cast<uint8_t*>(mapping);
  ImageHeader* header = reinterpret_cast<ImageHeader*>(base);
  if (fresh) {
    std::memcpy(header->magic, kMagic, sizeof(kMagic));
    header->version = kVersion;
    header->bytes_per_sector = static_cast<uint32_t>(bytes_per_sector);
    header->total_sectors = static_cast<uint64_t>(total_sectors);
  } else if (std::memcmp(header->magic, kMagic, sizeof(kMagic)) != 0 ||
             header->version != kVersion ||
             header->bytes_per_sector != static_cast<uint32_t>(bytes_per_sector) ||
             header->total_sectors != static_cast<uint64_t>(total_sectors)) {
    ::munmap(mapping, static_cast<size_t>(file_bytes));
    return fail("image " + path + " header does not match the simulated geometry");
  }

  std::unique_ptr<DiskImage> image(new DiskImage());
  image->path_ = path;
  image->total_sectors_ = total_sectors;
  image->bytes_per_sector_ = bytes_per_sector;
  image->base_ = base;
  image->mapped_bytes_ = static_cast<size_t>(file_bytes);
  image->bitmap_ = base + kHeaderBytes;
  image->payload_ = base + kHeaderBytes + bitmap_bytes;
  return image;
}

DiskImage::~DiskImage() {
  if (base_ != nullptr) {
    ::munmap(base_, mapped_bytes_);
  }
}

std::vector<int64_t> DiskImage::PopulatedSectors() const {
  std::vector<int64_t> sectors;
  for (int64_t s = 0; s < total_sectors_; ++s) {
    if (IsPopulated(s)) {
      sectors.push_back(s);
    }
  }
  return sectors;
}

bool DiskImage::Sync() {
  return base_ != nullptr && ::msync(base_, mapped_bytes_, MS_SYNC) == 0;
}

}  // namespace vafs
