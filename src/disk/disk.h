// Stateful simulated disk.
//
// Wraps a DiskModel with mutable state: the current arm position and a
// sparse in-memory sector store. Read/Write return the simulated service
// time of the operation so callers (the MSM service loop, benches) can
// advance the simulation clock; the arm position is updated so that the
// next operation pays the correct seek.
//
// Data retention is optional: benchmarks that only study timing can run
// with retain_data = false and skip the byte copies.
//
// Fault model (src/disk/fault_injector.h): when DiskOptions::faults is
// configured, Read/Write may fail with kIoError (transient) or kBadSector
// (latent defect). A faulted operation still consumed the mechanism — seek,
// rotation, transfer — so the arm moves and busy time accrues; callers
// recover the charge via last_fault_service(). ReadSalvage models heroic
// recovery (ECC retries at reduced speed): it bypasses injection at a
// configured service-time multiplier, so relocation machinery can rescue
// data from a defective extent.
//
// Power cuts: an armed crash schedule kills the device after N durably
// written sectors. The write in flight persists only a prefix (or a torn
// shred) of its data; every later operation fails until PowerCycle()
// models the host rebooting the drive. This is how the crash-consistency
// layer (src/vafs/persistence.h) proves every checkpoint phase leaves a
// recoverable image at every sector boundary.

#ifndef VAFS_SRC_DISK_DISK_H_
#define VAFS_SRC_DISK_DISK_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/disk/disk_image.h"
#include "src/disk/disk_model.h"
#include "src/disk/fault_injector.h"
#include "src/obs/trace.h"
#include "src/util/result.h"
#include "src/util/time.h"

namespace vafs {

struct DiskOptions {
  bool retain_data = true;
  // Fault injection; the default (zero rates, no bad ranges) never fails
  // anything and leaves all timing bit-identical.
  FaultOptions faults;
  // When non-empty (and retain_data is on), sector payloads live in an
  // mmap'd image file at this path instead of per-sector heap vectors
  // (DESIGN.md section 15). Timing and trace output are identical either
  // way; an unopenable path falls back to the in-memory store (see
  // Disk::image_backed). `image_truncate` discards any existing file
  // instead of remounting its contents.
  std::string image_path;
  bool image_truncate = false;
};

class Disk {
 public:
  using Options = DiskOptions;

  explicit Disk(const DiskParameters& params, DiskOptions options = DiskOptions());

  const DiskModel& model() const { return model_; }
  int64_t total_sectors() const { return model_.params().TotalSectors(); }
  int64_t bytes_per_sector() const { return model_.params().bytes_per_sector; }

  // Cylinder the arm currently rests on.
  int64_t head_cylinder() const { return head_cylinder_; }

  // Repositions the arm (e.g., after the disk served an unrelated task).
  void MoveHeadToCylinder(int64_t cylinder);

  // Reads `sectors` contiguous sectors starting at `start_sector` into
  // `out` (resized to fit; left empty when retain_data is off). Returns the
  // simulated service time: seek + rotational latency + transfer.
  Result<SimDuration> Read(int64_t start_sector, int64_t sectors, std::vector<uint8_t>* out);

  // Writes the given bytes over `sectors` contiguous sectors. `data` must
  // be exactly sectors * bytes_per_sector long (or empty when retain_data
  // is off). Returns the simulated service time.
  Result<SimDuration> Write(int64_t start_sector, int64_t sectors, std::span<const uint8_t> data);

  // Salvage read: bypasses fault injection (including bad ranges) at
  // faults.salvage_cost_multiplier times the normal service time. Used by
  // relocation to rescue the payload of a defective extent. Still fails if
  // the whole device is down.
  Result<SimDuration> ReadSalvage(int64_t start_sector, int64_t sectors,
                                  std::vector<uint8_t>* out);

  // Pure timing: service time the next read/write of this extent would
  // take from the current arm position, without performing it.
  SimDuration PeekServiceTime(int64_t start_sector, int64_t sectors) const;

  // Whole-device failure: while failed, every operation returns kIoError
  // immediately (no mechanical time is consumed). DiskArray uses this to
  // model the loss of one array member.
  void set_failed(bool failed) { failed_ = failed; }
  bool failed() const { return failed_; }

  // Power state. A tripped crash schedule (FaultOptions::crash_after_sectors
  // or FaultInjector::ArmPowerCut) leaves the device powered off; whatever
  // sectors landed before the cut stay on the platter. PowerCycle restores
  // power, disarms any pending schedule and homes the arm — the state a
  // recovery path mounts against.
  bool powered_off() const { return injector_.powered_off(); }
  void PowerCycle();

  // Sector numbers that currently hold data, sorted (offline diagnostics:
  // the fsck scavenger scans these for Header Block signatures instead of
  // sweeping the whole address space). Requires retain_data.
  std::vector<int64_t> PopulatedSectors() const;

  // Fault injection state (counters, runtime bad-range management).
  FaultInjector& fault_injector() { return injector_; }
  const FaultInjector& fault_injector() const { return injector_; }

  // Simulated time the most recent *failed* Read/Write consumed before the
  // fault surfaced (0 if the device was down and never moved). Callers
  // advancing a clock must charge this on error, since the Result carries
  // no duration.
  SimDuration last_fault_service() const { return last_fault_service_; }

  // Lifetime operation counters (diagnostics).
  int64_t reads() const { return reads_; }
  int64_t writes() const { return writes_; }
  SimDuration busy_time() const { return busy_time_; }

  // Optional observability: every Read/Write reports its extent, simulated
  // service time and arm travel (seek_cylinders) to `sink`. The sink must
  // outlive the disk.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }
  obs::TraceSink* trace_sink() const { return trace_; }

  // Optional clock for trace timestamps: when set, device events are
  // stamped end-of-operation relative to *hint (the caller's simulated
  // clock at issue time, e.g. the scheduler's in-round `now`). When null,
  // events fall back to the device's cumulative busy clock, which orders
  // operations correctly but is not simulation time. The pointee must stay
  // valid until the hint is cleared with set_time_hint(nullptr).
  void set_time_hint(const SimTime* hint) { time_hint_ = hint; }

  // Arm travel (cylinders) of the most recent positioned operation.
  int64_t last_seek_cylinders() const { return last_seek_cylinders_; }

  // Backing-store introspection: true when sector payloads live in the
  // mmap'd image (DiskOptions::image_path opened successfully). When an
  // image was requested but could not be opened, image_error() carries the
  // reason and the disk runs on the sparse in-memory store.
  bool image_backed() const { return image_ != nullptr; }
  const std::string& image_error() const { return image_error_; }

  // Flushes the mmap'd image to stable storage (msync). A no-op returning
  // true when not image-backed; the persistence layer calls this at
  // checkpoint so a durable checkpoint implies a durable image.
  bool SyncImage();

 private:
  Status ValidateExtent(int64_t start_sector, int64_t sectors) const;
  SimDuration Position(int64_t start_sector);
  // Performs the mechanical part of an operation and consults the injector;
  // on fault, records last_fault_service_, emits the trace event and
  // returns the error the caller should surface.
  Status Faulted(FaultKind kind, int64_t start_sector, int64_t sectors, SimDuration service);
  Status CheckDeviceUp();

  // Trace timestamp for an operation that consumed `service`, under the
  // active clock (time hint or device busy clock).
  SimTime TraceTime(SimDuration service) const;

  DiskModel model_;
  Options options_;
  FaultInjector injector_;
  obs::TraceSink* trace_ = nullptr;
  const SimTime* time_hint_ = nullptr;
  int64_t last_seek_cylinders_ = 0;
  bool failed_ = false;
  SimDuration last_fault_service_ = 0;
  int64_t head_cylinder_ = 0;
  int64_t reads_ = 0;
  int64_t writes_ = 0;
  SimDuration busy_time_ = 0;
  // Copies `count` sectors starting at `start_sector` from the active
  // backing store into *out (resized; unwritten sectors read as zeros).
  void CopyOut(int64_t start_sector, int64_t count, std::vector<uint8_t>* out) const;
  // Persists one sector's payload into the active backing store.
  void PersistSector(int64_t sector, const uint8_t* data);

  // Sparse store: sector number -> sector payload. Unused when image-backed.
  std::unordered_map<int64_t, std::vector<uint8_t>> store_;
  std::unique_ptr<DiskImage> image_;
  std::string image_error_;
};

}  // namespace vafs

#endif  // VAFS_SRC_DISK_DISK_H_
