#include "src/disk/disk_array.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace vafs {

DiskArray::DiskArray(const DiskParameters& member_params, int members, DiskOptions options) {
  assert(members > 0);
  disks_.reserve(static_cast<size_t>(members));
  for (int i = 0; i < members; ++i) {
    // Decorrelate member fault schedules: identical seeds would make every
    // member fault on the same ops, turning a 1% rate into a 1% whole-batch
    // loss rate.
    DiskOptions member_options = options;
    member_options.faults.seed = options.faults.seed + static_cast<uint64_t>(i);
    disks_.push_back(std::make_unique<Disk>(member_params, member_options));
  }
}

Status DiskArray::ValidateBatch(const std::vector<BatchRequest>& batch) const {
  std::vector<bool> used(disks_.size(), false);
  for (const BatchRequest& request : batch) {
    if (request.member < 0 || request.member >= members()) {
      return Status(ErrorCode::kInvalidArgument,
                    "batch names member " + std::to_string(request.member) + " of " +
                        std::to_string(members()));
    }
    if (used[static_cast<size_t>(request.member)]) {
      // Two requests on one member cannot proceed concurrently; callers
      // must split such work across batches.
      return Status(ErrorCode::kInvalidArgument,
                    "batch has two requests for member " + std::to_string(request.member));
    }
    used[static_cast<size_t>(request.member)] = true;
  }
  return Status::Ok();
}

Result<DiskArray::BatchOutcome> DiskArray::ReadBatch(const std::vector<BatchRequest>& batch,
                                                     std::vector<std::vector<uint8_t>>* out) {
  if (Status status = ValidateBatch(batch); !status.ok()) {
    return status;
  }
  if (out != nullptr) {
    out->assign(batch.size(), {});
  }
  BatchOutcome outcome;
  outcome.per_request.resize(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const BatchRequest& request = batch[i];
    Disk& disk = *disks_[static_cast<size_t>(request.member)];
    std::vector<uint8_t>* slot = out != nullptr ? &(*out)[i] : nullptr;
    Result<SimDuration> service = disk.Read(request.start_sector, request.sectors, slot);
    MemberOutcome& fate = outcome.per_request[i];
    if (service.ok()) {
      fate.service = *service;
    } else {
      fate.status = service.status();
      fate.service = disk.last_fault_service();
    }
    outcome.completion_time = std::max(outcome.completion_time, fate.service);
  }
  return outcome;
}

Result<DiskArray::BatchOutcome> DiskArray::WriteBatch(const std::vector<BatchRequest>& batch,
                                                      const std::vector<std::vector<uint8_t>>& data) {
  if (Status status = ValidateBatch(batch); !status.ok()) {
    return status;
  }
  if (!data.empty() && data.size() != batch.size()) {
    return Status(ErrorCode::kInvalidArgument, "payload count does not match batch size");
  }
  BatchOutcome outcome;
  outcome.per_request.resize(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const BatchRequest& request = batch[i];
    Disk& disk = *disks_[static_cast<size_t>(request.member)];
    std::span<const uint8_t> payload =
        data.empty() ? std::span<const uint8_t>() : std::span<const uint8_t>(data[i]);
    Result<SimDuration> service = disk.Write(request.start_sector, request.sectors, payload);
    MemberOutcome& fate = outcome.per_request[i];
    if (service.ok()) {
      fate.service = *service;
    } else {
      fate.status = service.status();
      fate.service = disk.last_fault_service();
    }
    outcome.completion_time = std::max(outcome.completion_time, fate.service);
  }
  return outcome;
}

double DiskArray::AggregateTransferRateBitsPerSec() const {
  return static_cast<double>(members()) * member_model().TransferRateBitsPerSec();
}

}  // namespace vafs
