#include "src/disk/disk_array.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "src/obs/trace.h"
#include "src/util/checksum.h"
#include "src/util/worker_pool.h"

namespace vafs {

DiskArray::DiskArray(const DiskParameters& member_params, int members, DiskOptions options) {
  assert(members > 0);
  disks_.reserve(static_cast<size_t>(members));
  for (int i = 0; i < members; ++i) {
    // Decorrelate member fault schedules: identical seeds would make every
    // member fault on the same ops, turning a 1% rate into a 1% whole-batch
    // loss rate.
    DiskOptions member_options = options;
    member_options.faults.seed = options.faults.seed + static_cast<uint64_t>(i);
    // One image file per member: a shared mapping would let two arms
    // clobber each other's sectors.
    if (!member_options.image_path.empty()) {
      member_options.image_path += ".m" + std::to_string(i);
    }
    disks_.push_back(std::make_unique<Disk>(member_params, member_options));
  }
}

Status DiskArray::ValidateBatch(const std::vector<BatchRequest>& batch) const {
  std::vector<bool> used(disks_.size(), false);
  for (const BatchRequest& request : batch) {
    if (request.member < 0 || request.member >= members()) {
      return Status(ErrorCode::kInvalidArgument,
                    "batch names member " + std::to_string(request.member) + " of " +
                        std::to_string(members()));
    }
    if (used[static_cast<size_t>(request.member)]) {
      // Two requests on one member cannot proceed concurrently; callers
      // must split such work across batches.
      return Status(ErrorCode::kInvalidArgument,
                    "batch has two requests for member " + std::to_string(request.member));
    }
    used[static_cast<size_t>(request.member)] = true;
  }
  return Status::Ok();
}

void DiskArray::DispatchBatch(const std::vector<BatchRequest>& batch,
                              const std::function<void(size_t)>& serve, BatchOutcome* outcome) {
  // Redirect each participating member's trace stream into a private
  // buffer, so parallel tasks cannot interleave emissions in the shared
  // sink graph. The swap happens before dispatch and the replay after the
  // join, both on the coordinating thread; inside the window each task
  // exclusively owns its member Disk and therefore its buffer.
  std::vector<obs::BufferedTraceSink> buffers(batch.size());
  std::vector<obs::TraceSink*> original(batch.size(), nullptr);
  for (size_t i = 0; i < batch.size(); ++i) {
    Disk& disk = *disks_[static_cast<size_t>(batch[i].member)];
    original[i] = disk.trace_sink();
    if (original[i] != nullptr) {
      disk.set_trace_sink(&buffers[i]);
    }
  }
  if (pool_ != nullptr && pool_->workers() > 1 && batch.size() > 1) {
    std::vector<WorkerPool::Task> tasks;
    tasks.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      tasks.push_back([&serve, i] { serve(i); });
    }
    pool_->RunAll(std::move(tasks));
  } else {
    for (size_t i = 0; i < batch.size(); ++i) {
      serve(i);
    }
  }
  // Barrier passed: replay traces in batch order. Serial execution emits
  // request 0's events, then request 1's, and so on — replaying the
  // buffers in that same order makes the downstream stream byte-identical
  // for any worker count.
  for (size_t i = 0; i < batch.size(); ++i) {
    Disk& disk = *disks_[static_cast<size_t>(batch[i].member)];
    if (original[i] != nullptr) {
      disk.set_trace_sink(original[i]);
      buffers[i].FlushTo(original[i]);
    }
  }
  for (const MemberOutcome& fate : outcome->per_request) {
    outcome->completion_time = std::max(outcome->completion_time, fate.service);
  }
}

Result<DiskArray::BatchOutcome> DiskArray::ReadBatch(const std::vector<BatchRequest>& batch,
                                                     std::vector<std::vector<uint8_t>>* out) {
  if (Status status = ValidateBatch(batch); !status.ok()) {
    return status;
  }
  if (out != nullptr) {
    out->assign(batch.size(), {});
  }
  BatchOutcome outcome;
  outcome.per_request.resize(batch.size());
  const bool checksum = checksum_payloads_;
  auto serve = [this, &batch, out, &outcome, checksum](size_t i) {
    const BatchRequest& request = batch[i];
    Disk& disk = *disks_[static_cast<size_t>(request.member)];
    std::vector<uint8_t>* slot = out != nullptr ? &(*out)[i] : nullptr;
    Result<SimDuration> service = disk.Read(request.start_sector, request.sectors, slot);
    MemberOutcome& fate = outcome.per_request[i];
    if (service.ok()) {
      fate.service = *service;
      if (checksum && slot != nullptr && !slot->empty()) {
        fate.payload_crc = Crc64(*slot);
      }
    } else {
      fate.status = service.status();
      fate.service = disk.last_fault_service();
    }
  };
  DispatchBatch(batch, serve, &outcome);
  return outcome;
}

Result<DiskArray::BatchOutcome> DiskArray::ReadBatchInto(
    const std::vector<BatchRequest>& batch, const std::vector<std::vector<uint8_t>*>& pages) {
  if (Status status = ValidateBatch(batch); !status.ok()) {
    return status;
  }
  if (!pages.empty() && pages.size() != batch.size()) {
    return Status(ErrorCode::kInvalidArgument, "page count does not match batch size");
  }
  BatchOutcome outcome;
  outcome.per_request.resize(batch.size());
  const bool checksum = checksum_payloads_;
  auto serve = [this, &batch, &pages, &outcome, checksum](size_t i) {
    const BatchRequest& request = batch[i];
    Disk& disk = *disks_[static_cast<size_t>(request.member)];
    std::vector<uint8_t>* slot = pages.empty() ? nullptr : pages[i];
    Result<SimDuration> service = disk.Read(request.start_sector, request.sectors, slot);
    MemberOutcome& fate = outcome.per_request[i];
    if (service.ok()) {
      fate.service = *service;
      if (checksum && slot != nullptr && !slot->empty()) {
        fate.payload_crc = Crc64(*slot);
      }
    } else {
      fate.status = service.status();
      fate.service = disk.last_fault_service();
    }
  };
  DispatchBatch(batch, serve, &outcome);
  return outcome;
}

Result<DiskArray::BatchOutcome> DiskArray::WriteBatch(const std::vector<BatchRequest>& batch,
                                                      const std::vector<std::vector<uint8_t>>& data) {
  if (Status status = ValidateBatch(batch); !status.ok()) {
    return status;
  }
  if (!data.empty() && data.size() != batch.size()) {
    return Status(ErrorCode::kInvalidArgument, "payload count does not match batch size");
  }
  BatchOutcome outcome;
  outcome.per_request.resize(batch.size());
  const bool checksum = checksum_payloads_;
  auto serve = [this, &batch, &data, &outcome, checksum](size_t i) {
    const BatchRequest& request = batch[i];
    Disk& disk = *disks_[static_cast<size_t>(request.member)];
    std::span<const uint8_t> payload =
        data.empty() ? std::span<const uint8_t>() : std::span<const uint8_t>(data[i]);
    Result<SimDuration> service = disk.Write(request.start_sector, request.sectors, payload);
    MemberOutcome& fate = outcome.per_request[i];
    if (service.ok()) {
      fate.service = *service;
      if (checksum && !payload.empty()) {
        fate.payload_crc = Crc64(payload);
      }
    } else {
      fate.status = service.status();
      fate.service = disk.last_fault_service();
    }
  };
  DispatchBatch(batch, serve, &outcome);
  return outcome;
}

double DiskArray::AggregateTransferRateBitsPerSec() const {
  return static_cast<double>(members()) * member_model().TransferRateBitsPerSec();
}

}  // namespace vafs
