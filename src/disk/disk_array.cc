#include "src/disk/disk_array.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace vafs {

DiskArray::DiskArray(const DiskParameters& member_params, int members, DiskOptions options) {
  assert(members > 0);
  disks_.reserve(static_cast<size_t>(members));
  for (int i = 0; i < members; ++i) {
    disks_.push_back(std::make_unique<Disk>(member_params, options));
  }
}

Status DiskArray::ValidateBatch(const std::vector<BatchRequest>& batch) const {
  std::vector<bool> used(disks_.size(), false);
  for (const BatchRequest& request : batch) {
    if (request.member < 0 || request.member >= members()) {
      return Status(ErrorCode::kInvalidArgument,
                    "batch names member " + std::to_string(request.member) + " of " +
                        std::to_string(members()));
    }
    if (used[static_cast<size_t>(request.member)]) {
      // Two requests on one member cannot proceed concurrently; callers
      // must split such work across batches.
      return Status(ErrorCode::kInvalidArgument,
                    "batch has two requests for member " + std::to_string(request.member));
    }
    used[static_cast<size_t>(request.member)] = true;
  }
  return Status::Ok();
}

Result<SimDuration> DiskArray::ReadBatch(const std::vector<BatchRequest>& batch,
                                         std::vector<std::vector<uint8_t>>* out) {
  if (Status status = ValidateBatch(batch); !status.ok()) {
    return status;
  }
  if (out != nullptr) {
    out->assign(batch.size(), {});
  }
  SimDuration slowest = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const BatchRequest& request = batch[i];
    std::vector<uint8_t>* slot = out != nullptr ? &(*out)[i] : nullptr;
    Result<SimDuration> service =
        disks_[static_cast<size_t>(request.member)]->Read(request.start_sector, request.sectors, slot);
    if (!service.ok()) {
      return service.status();
    }
    slowest = std::max(slowest, *service);
  }
  return slowest;
}

Result<SimDuration> DiskArray::WriteBatch(const std::vector<BatchRequest>& batch,
                                          const std::vector<std::vector<uint8_t>>& data) {
  if (Status status = ValidateBatch(batch); !status.ok()) {
    return status;
  }
  if (!data.empty() && data.size() != batch.size()) {
    return Status(ErrorCode::kInvalidArgument, "payload count does not match batch size");
  }
  SimDuration slowest = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const BatchRequest& request = batch[i];
    std::span<const uint8_t> payload =
        data.empty() ? std::span<const uint8_t>() : std::span<const uint8_t>(data[i]);
    Result<SimDuration> service =
        disks_[static_cast<size_t>(request.member)]->Write(request.start_sector, request.sectors, payload);
    if (!service.ok()) {
      return service.status();
    }
    slowest = std::max(slowest, *service);
  }
  return slowest;
}

double DiskArray::AggregateTransferRateBitsPerSec() const {
  return static_cast<double>(members()) * member_model().TransferRateBitsPerSec();
}

}  // namespace vafs
