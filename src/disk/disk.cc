#include "src/disk/disk.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace vafs {

Disk::Disk(const DiskParameters& params, DiskOptions options)
    : model_(params), options_(options) {}

namespace {

void EmitTransfer(obs::TraceSink* trace, obs::TraceEventKind kind, int64_t start_sector,
                  int64_t sectors, SimDuration service) {
  if (trace == nullptr) {
    return;
  }
  obs::TraceEvent event;
  event.kind = kind;
  event.sector = start_sector;
  event.blocks = sectors;
  event.duration = service;
  trace->OnEvent(event);
}

}  // namespace

void Disk::MoveHeadToCylinder(int64_t cylinder) {
  assert(cylinder >= 0 && cylinder < model_.params().cylinders);
  head_cylinder_ = cylinder;
}

Status Disk::ValidateExtent(int64_t start_sector, int64_t sectors) const {
  if (start_sector < 0 || sectors <= 0 || start_sector + sectors > total_sectors()) {
    return Status(ErrorCode::kOutOfRange,
                  "extent [" + std::to_string(start_sector) + ", +" + std::to_string(sectors) +
                      ") outside disk of " + std::to_string(total_sectors()) + " sectors");
  }
  return Status::Ok();
}

SimDuration Disk::Position(int64_t start_sector) {
  const int64_t target_cylinder = model_.SectorToCylinder(start_sector);
  const SimDuration seek = model_.SeekTime(head_cylinder_, target_cylinder);
  head_cylinder_ = target_cylinder;
  return seek + model_.AverageRotationalLatency();
}

SimDuration Disk::PeekServiceTime(int64_t start_sector, int64_t sectors) const {
  const int64_t target_cylinder = model_.SectorToCylinder(start_sector);
  return model_.SeekTime(head_cylinder_, target_cylinder) + model_.AverageRotationalLatency() +
         model_.TransferTime(sectors);
}

Result<SimDuration> Disk::Read(int64_t start_sector, int64_t sectors, std::vector<uint8_t>* out) {
  if (Status status = ValidateExtent(start_sector, sectors); !status.ok()) {
    return status;
  }
  const SimDuration service = Position(start_sector) + model_.TransferTime(sectors);
  ++reads_;
  busy_time_ += service;
  EmitTransfer(trace_, obs::TraceEventKind::kDiskRead, start_sector, sectors, service);
  // Arm ends on the cylinder of the last sector read.
  head_cylinder_ = model_.SectorToCylinder(start_sector + sectors - 1);

  if (out != nullptr) {
    out->clear();
    if (options_.retain_data) {
      const int64_t sector_bytes = bytes_per_sector();
      out->resize(static_cast<size_t>(sectors * sector_bytes), 0);
      for (int64_t i = 0; i < sectors; ++i) {
        auto it = store_.find(start_sector + i);
        if (it != store_.end()) {
          std::copy(it->second.begin(), it->second.end(),
                    out->begin() + static_cast<ptrdiff_t>(i * sector_bytes));
        }
      }
    }
  }
  return service;
}

Result<SimDuration> Disk::Write(int64_t start_sector, int64_t sectors,
                                std::span<const uint8_t> data) {
  if (Status status = ValidateExtent(start_sector, sectors); !status.ok()) {
    return status;
  }
  const int64_t sector_bytes = bytes_per_sector();
  if (options_.retain_data && !data.empty() &&
      static_cast<int64_t>(data.size()) != sectors * sector_bytes) {
    return Status(ErrorCode::kInvalidArgument,
                  "write payload of " + std::to_string(data.size()) + " bytes does not cover " +
                      std::to_string(sectors) + " sectors");
  }
  const SimDuration service = Position(start_sector) + model_.TransferTime(sectors);
  ++writes_;
  busy_time_ += service;
  EmitTransfer(trace_, obs::TraceEventKind::kDiskWrite, start_sector, sectors, service);
  head_cylinder_ = model_.SectorToCylinder(start_sector + sectors - 1);

  if (options_.retain_data && !data.empty()) {
    for (int64_t i = 0; i < sectors; ++i) {
      auto first = data.begin() + static_cast<ptrdiff_t>(i * sector_bytes);
      store_[start_sector + i] = std::vector<uint8_t>(first, first + sector_bytes);
    }
  }
  return service;
}

}  // namespace vafs
