#include "src/disk/disk.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <string>

namespace vafs {

Disk::Disk(const DiskParameters& params, DiskOptions options)
    : model_(params), options_(options), injector_(options.faults) {
  if (options_.retain_data && !options_.image_path.empty()) {
    image_ = DiskImage::Open(options_.image_path, total_sectors(), bytes_per_sector(),
                             options_.image_truncate, &image_error_);
    // A refused image (unwritable path, geometry mismatch) is soft: the
    // sparse store takes over and simulated results are unchanged.
  }
}

namespace {

void EmitTransfer(obs::TraceSink* trace, obs::TraceEventKind kind, int64_t start_sector,
                  int64_t sectors, SimDuration service, SimTime time, int64_t seek_cylinders,
                  const char* detail = nullptr) {
  if (trace == nullptr) {
    return;
  }
  obs::TraceEvent event;
  event.kind = kind;
  event.time = time;
  event.sector = start_sector;
  event.blocks = sectors;
  event.duration = service;
  event.seek_cylinders = seek_cylinders;
  if (detail != nullptr) {
    event.detail = detail;
  }
  trace->OnEvent(event);
}

}  // namespace

SimTime Disk::TraceTime(SimDuration service) const {
  // Under a caller-provided clock the event ends `service` after the
  // caller's now; otherwise the cumulative busy clock (already advanced by
  // this operation) stands in.
  return time_hint_ != nullptr ? *time_hint_ + service : busy_time_;
}

Status Disk::CheckDeviceUp() {
  if (injector_.powered_off()) {
    // No power: the bus does not answer at all.
    last_fault_service_ = 0;
    EmitTransfer(trace_, obs::TraceEventKind::kDiskFault, 0, 0, 0, TraceTime(0), 0,
                 "powered_off");
    return Status(ErrorCode::kIoError, "disk powered off");
  }
  if (!failed_) {
    return Status::Ok();
  }
  // A dead device answers instantly (host-side timeout abstracted away).
  last_fault_service_ = 0;
  EmitTransfer(trace_, obs::TraceEventKind::kDiskFault, 0, 0, 0, TraceTime(0), 0,
               "device_failed");
  return Status(ErrorCode::kIoError, "disk failed");
}

void Disk::PowerCycle() {
  injector_.PowerRestore();
  head_cylinder_ = 0;
}

std::vector<int64_t> Disk::PopulatedSectors() const {
  if (image_ != nullptr) {
    return image_->PopulatedSectors();  // bitmap scan, already sorted
  }
  std::vector<int64_t> sectors;
  sectors.reserve(store_.size());
  for (const auto& [sector, data] : store_) {
    sectors.push_back(sector);
  }
  std::sort(sectors.begin(), sectors.end());
  return sectors;
}

bool Disk::SyncImage() { return image_ == nullptr || image_->Sync(); }

void Disk::CopyOut(int64_t start_sector, int64_t count, std::vector<uint8_t>* out) const {
  const int64_t sector_bytes = bytes_per_sector();
  out->resize(static_cast<size_t>(count * sector_bytes), 0);
  if (image_ != nullptr) {
    for (int64_t i = 0; i < count; ++i) {
      if (image_->IsPopulated(start_sector + i)) {
        std::memcpy(out->data() + static_cast<ptrdiff_t>(i * sector_bytes),
                    image_->SectorData(start_sector + i), static_cast<size_t>(sector_bytes));
      } else {
        std::memset(out->data() + static_cast<ptrdiff_t>(i * sector_bytes), 0,
                    static_cast<size_t>(sector_bytes));
      }
    }
    return;
  }
  for (int64_t i = 0; i < count; ++i) {
    auto it = store_.find(start_sector + i);
    if (it != store_.end()) {
      std::copy(it->second.begin(), it->second.end(),
                out->begin() + static_cast<ptrdiff_t>(i * sector_bytes));
    } else {
      std::memset(out->data() + static_cast<ptrdiff_t>(i * sector_bytes), 0,
                  static_cast<size_t>(sector_bytes));
    }
  }
}

void Disk::PersistSector(int64_t sector, const uint8_t* data) {
  const int64_t sector_bytes = bytes_per_sector();
  if (image_ != nullptr) {
    std::memcpy(image_->SectorData(sector), data, static_cast<size_t>(sector_bytes));
    image_->MarkPopulated(sector);
    return;
  }
  store_[sector] = std::vector<uint8_t>(data, data + sector_bytes);
}

Status Disk::Faulted(FaultKind kind, int64_t start_sector, int64_t sectors,
                     SimDuration service) {
  // The mechanism did the work before the error surfaced: the arm moved and
  // the platter turned, only the data is missing.
  last_fault_service_ = service;
  EmitTransfer(trace_, obs::TraceEventKind::kDiskFault, start_sector, sectors, service,
               TraceTime(service), last_seek_cylinders_, FaultKindName(kind));
  if (kind == FaultKind::kBadSector) {
    return Status(ErrorCode::kBadSector,
                  "latent defect in extent [" + std::to_string(start_sector) + ", +" +
                      std::to_string(sectors) + ")");
  }
  return Status(ErrorCode::kIoError,
                "transient fault reading/writing extent [" + std::to_string(start_sector) +
                    ", +" + std::to_string(sectors) + ")");
}

void Disk::MoveHeadToCylinder(int64_t cylinder) {
  assert(cylinder >= 0 && cylinder < model_.params().cylinders);
  head_cylinder_ = cylinder;
}

Status Disk::ValidateExtent(int64_t start_sector, int64_t sectors) const {
  if (start_sector < 0 || sectors <= 0 || start_sector + sectors > total_sectors()) {
    return Status(ErrorCode::kOutOfRange,
                  "extent [" + std::to_string(start_sector) + ", +" + std::to_string(sectors) +
                      ") outside disk of " + std::to_string(total_sectors()) + " sectors");
  }
  return Status::Ok();
}

SimDuration Disk::Position(int64_t start_sector) {
  const int64_t target_cylinder = model_.SectorToCylinder(start_sector);
  const SimDuration seek = model_.SeekTime(head_cylinder_, target_cylinder);
  last_seek_cylinders_ = std::abs(target_cylinder - head_cylinder_);
  head_cylinder_ = target_cylinder;
  return seek + model_.AverageRotationalLatency();
}

SimDuration Disk::PeekServiceTime(int64_t start_sector, int64_t sectors) const {
  const int64_t target_cylinder = model_.SectorToCylinder(start_sector);
  return model_.SeekTime(head_cylinder_, target_cylinder) + model_.AverageRotationalLatency() +
         model_.TransferTime(sectors);
}

Result<SimDuration> Disk::Read(int64_t start_sector, int64_t sectors, std::vector<uint8_t>* out) {
  if (Status status = CheckDeviceUp(); !status.ok()) {
    return status;
  }
  if (Status status = ValidateExtent(start_sector, sectors); !status.ok()) {
    return status;
  }
  const SimDuration service = Position(start_sector) + model_.TransferTime(sectors);
  ++reads_;
  busy_time_ += service;
  // Arm ends on the cylinder of the last sector read.
  head_cylinder_ = model_.SectorToCylinder(start_sector + sectors - 1);
  if (FaultKind fault = injector_.OnRead(start_sector, sectors); fault != FaultKind::kNone) {
    return Faulted(fault, start_sector, sectors, service);
  }
  EmitTransfer(trace_, obs::TraceEventKind::kDiskRead, start_sector, sectors, service,
               TraceTime(service), last_seek_cylinders_);

  if (out != nullptr) {
    if (options_.retain_data) {
      CopyOut(start_sector, sectors, out);
    } else {
      out->clear();
    }
  }
  return service;
}

Result<SimDuration> Disk::ReadSalvage(int64_t start_sector, int64_t sectors,
                                      std::vector<uint8_t>* out) {
  if (Status status = CheckDeviceUp(); !status.ok()) {
    return status;
  }
  if (Status status = ValidateExtent(start_sector, sectors); !status.ok()) {
    return status;
  }
  // ECC heroics: the same mechanical access, repeated/slowed by the
  // configured factor, and immune to injected faults.
  const double factor = std::max(1.0, options_.faults.salvage_cost_multiplier);
  const SimDuration service = static_cast<SimDuration>(
      static_cast<double>(Position(start_sector) + model_.TransferTime(sectors)) * factor);
  ++reads_;
  busy_time_ += service;
  head_cylinder_ = model_.SectorToCylinder(start_sector + sectors - 1);
  EmitTransfer(trace_, obs::TraceEventKind::kDiskSalvage, start_sector, sectors, service,
               TraceTime(service), last_seek_cylinders_);

  if (out != nullptr) {
    if (options_.retain_data) {
      CopyOut(start_sector, sectors, out);
    } else {
      out->clear();
    }
  }
  return service;
}

Result<SimDuration> Disk::Write(int64_t start_sector, int64_t sectors,
                                std::span<const uint8_t> data) {
  if (Status status = CheckDeviceUp(); !status.ok()) {
    return status;
  }
  if (Status status = ValidateExtent(start_sector, sectors); !status.ok()) {
    return status;
  }
  const int64_t sector_bytes = bytes_per_sector();
  if (options_.retain_data && !data.empty() &&
      static_cast<int64_t>(data.size()) != sectors * sector_bytes) {
    return Status(ErrorCode::kInvalidArgument,
                  "write payload of " + std::to_string(data.size()) + " bytes does not cover " +
                      std::to_string(sectors) + " sectors");
  }
  const SimDuration service = Position(start_sector) + model_.TransferTime(sectors);
  ++writes_;
  busy_time_ += service;
  head_cylinder_ = model_.SectorToCylinder(start_sector + sectors - 1);
  const CrashVerdict crash = injector_.OnWriteCrashCheck(sectors);
  if (crash.power_cut) {
    // The rail dropped mid-transfer: the leading prefix_sectors (plus any
    // torn shred) reached the platter before everything went dark.
    if (options_.retain_data && !data.empty()) {
      auto persist = [&](int64_t i) {
        PersistSector(start_sector + i, data.data() + static_cast<ptrdiff_t>(i * sector_bytes));
      };
      for (int64_t i = 0; i < crash.prefix_sectors; ++i) {
        persist(i);
      }
      for (size_t i = 0; i < crash.shred.size(); ++i) {
        if (crash.shred[i]) {
          persist(crash.prefix_sectors + static_cast<int64_t>(i));
        }
      }
    }
    last_fault_service_ = service;
    EmitTransfer(trace_, obs::TraceEventKind::kPowerCut, start_sector, crash.prefix_sectors,
                 service, TraceTime(service), last_seek_cylinders_,
                 crash.shred.empty() ? "power_cut" : "power_cut_torn");
    return Status(ErrorCode::kIoError,
                  "power cut " + std::to_string(crash.prefix_sectors) + " sectors into write [" +
                      std::to_string(start_sector) + ", +" + std::to_string(sectors) + ")");
  }
  if (FaultKind fault = injector_.OnWrite(start_sector, sectors); fault != FaultKind::kNone) {
    return Faulted(fault, start_sector, sectors, service);
  }
  EmitTransfer(trace_, obs::TraceEventKind::kDiskWrite, start_sector, sectors, service,
               TraceTime(service), last_seek_cylinders_);

  if (options_.retain_data && !data.empty()) {
    for (int64_t i = 0; i < sectors; ++i) {
      PersistSector(start_sector + i, data.data() + static_cast<ptrdiff_t>(i * sector_bytes));
    }
  }
  return service;
}

}  // namespace vafs
