// mmap'd disk-image backing store (DESIGN.md section 15).
//
// The simulated Disk's sparse in-memory store keeps one heap vector per
// written sector — fine for unit tests, but a 20k-stream image is
// gigabytes of payload that the host allocator has to carry and that
// vanishes with the process. DiskImage maps a flat on-disk file instead:
//
//   [ 4 KiB header | populated bitmap (4 KiB-rounded) | sector payloads ]
//
// The mapping is MAP_SHARED, so sector writes are plain memcpys into the
// page cache and the kernel persists them lazily; Sync() (wired to the
// filesystem's Checkpoint) forces an msync so a checkpointed image is
// durable at the same instant its metadata is. Reads memcpy straight out
// of the mapping into the caller's (pooled) buffer — no per-sector heap
// nodes anywhere on the path.
//
// The populated bitmap distinguishes never-written sectors (read as
// zeros, invisible to PopulatedSectors()) from genuinely zero payloads,
// preserving the sparse-store semantics the fsck scavenger depends on.
//
// Open() validates the header of an existing file against the simulated
// geometry, so remounting a previous run's image resumes with its data —
// the power-cut story of tests/disk_image_test.cc. All failures (bad
// path, geometry mismatch, mmap refusal) are soft: Open returns null with
// a message and the Disk falls back to the sparse store, keeping
// simulated results identical either way.

#ifndef VAFS_SRC_DISK_DISK_IMAGE_H_
#define VAFS_SRC_DISK_DISK_IMAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace vafs {

class DiskImage {
 public:
  // Maps `path`, creating/resizing it when new or `truncate` is set. An
  // existing file must carry a matching header (magic, sector size, sector
  // count); otherwise null is returned and `*error` says why.
  static std::unique_ptr<DiskImage> Open(const std::string& path, int64_t total_sectors,
                                         int64_t bytes_per_sector, bool truncate,
                                         std::string* error);

  ~DiskImage();
  DiskImage(const DiskImage&) = delete;
  DiskImage& operator=(const DiskImage&) = delete;

  int64_t total_sectors() const { return total_sectors_; }
  int64_t bytes_per_sector() const { return bytes_per_sector_; }
  const std::string& path() const { return path_; }

  // Direct pointer to a sector's payload inside the mapping.
  uint8_t* SectorData(int64_t sector) {
    return payload_ + sector * bytes_per_sector_;
  }
  const uint8_t* SectorData(int64_t sector) const {
    return payload_ + sector * bytes_per_sector_;
  }

  bool IsPopulated(int64_t sector) const {
    return (bitmap_[static_cast<size_t>(sector >> 3)] >> (sector & 7)) & 1;
  }
  void MarkPopulated(int64_t sector) {
    bitmap_[static_cast<size_t>(sector >> 3)] |= static_cast<uint8_t>(1u << (sector & 7));
  }

  // Sorted sector numbers with the populated bit set.
  std::vector<int64_t> PopulatedSectors() const;

  // msync the whole mapping (header, bitmap, payloads). False on failure.
  bool Sync();

 private:
  DiskImage() = default;

  std::string path_;
  int64_t total_sectors_ = 0;
  int64_t bytes_per_sector_ = 0;
  uint8_t* base_ = nullptr;  // mapping base (header page)
  size_t mapped_bytes_ = 0;
  uint8_t* bitmap_ = nullptr;   // into base_
  uint8_t* payload_ = nullptr;  // into base_
};

}  // namespace vafs

#endif  // VAFS_SRC_DISK_DISK_IMAGE_H_
