// Seeded, deterministic disk fault injection.
//
// The paper assumes a fault-free disk; this module supplies the faults so
// the rest of the system can prove it degrades gracefully. Three fault
// classes are modeled, mirroring what real spindles do:
//
//  - transient read/write errors: each operation independently fails with
//    a configured probability (a recoverable positioning or ECC hiccup —
//    the next attempt may succeed);
//  - latent bad-sector ranges: media defects. Every operation touching a
//    marked range fails deterministically until the data is relocated;
//  - whole-device failure: the disk stops answering (DiskArray uses this
//    to model the loss of one array member).
//
// Determinism contract: all randomness comes from one explicitly seeded
// xoshiro stream, consulted exactly once per eligible operation, so a
// given (seed, operation sequence) always yields the same fault schedule.
// With rates at zero and no bad ranges the injector never draws from the
// stream and never fails anything — a disabled injector is bit-identical
// to no injector at all.

#ifndef VAFS_SRC_DISK_FAULT_INJECTOR_H_
#define VAFS_SRC_DISK_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/util/prng.h"

namespace vafs {

// A latent defect: sectors [start_sector, start_sector + sectors).
struct BadRange {
  int64_t start_sector = 0;
  int64_t sectors = 0;

  bool Overlaps(int64_t start, int64_t count) const {
    return start < start_sector + sectors && start_sector < start + count;
  }
};

struct FaultOptions {
  uint64_t seed = 0;
  // Independent per-operation transient failure probabilities, in [0, 1].
  double read_fault_rate = 0.0;
  double write_fault_rate = 0.0;
  // Latent defects present from construction (more can be added later).
  std::vector<BadRange> bad_ranges;
  // Service-time factor a salvage read pays (ECC heroics, re-reads at
  // reduced speed) relative to a normal read of the same extent.
  double salvage_cost_multiplier = 3.0;

  bool AnyTransient() const { return read_fault_rate > 0.0 || write_fault_rate > 0.0; }
};

// What the injector decided about one operation.
enum class FaultKind {
  kNone,       // operation proceeds normally
  kTransient,  // recoverable error: a retry may succeed
  kBadSector,  // latent media defect: every attempt fails until relocated
};

const char* FaultKindName(FaultKind kind);

class FaultInjector {
 public:
  explicit FaultInjector(FaultOptions options);

  const FaultOptions& options() const { return options_; }

  // Fate of a read / write of [start_sector, start_sector + sectors).
  // Bad ranges dominate transient faults (the defect is certain; the coin
  // flip is not consulted for an extent that is doomed anyway).
  FaultKind OnRead(int64_t start_sector, int64_t sectors);
  FaultKind OnWrite(int64_t start_sector, int64_t sectors);

  // Declares a latent defect at runtime (e.g. a scrub discovering one).
  void MarkBad(int64_t start_sector, int64_t sectors);
  // Clears any defect overlapping the extent (sector remapped/repaired).
  void ClearBad(int64_t start_sector, int64_t sectors);
  bool IsBad(int64_t start_sector, int64_t sectors) const;

  // Lifetime fault counters, by class.
  int64_t transient_read_faults() const { return transient_read_faults_; }
  int64_t transient_write_faults() const { return transient_write_faults_; }
  int64_t bad_sector_hits() const { return bad_sector_hits_; }

 private:
  FaultKind Decide(double rate, int64_t start_sector, int64_t sectors, int64_t* transient_counter);

  FaultOptions options_;
  Prng prng_;
  int64_t transient_read_faults_ = 0;
  int64_t transient_write_faults_ = 0;
  int64_t bad_sector_hits_ = 0;
};

}  // namespace vafs

#endif  // VAFS_SRC_DISK_FAULT_INJECTOR_H_
