// Seeded, deterministic disk fault injection.
//
// The paper assumes a fault-free disk; this module supplies the faults so
// the rest of the system can prove it degrades gracefully. Three fault
// classes are modeled, mirroring what real spindles do:
//
//  - transient read/write errors: each operation independently fails with
//    a configured probability (a recoverable positioning or ECC hiccup —
//    the next attempt may succeed);
//  - latent bad-sector ranges: media defects. Every operation touching a
//    marked range fails deterministically until the data is relocated;
//  - whole-device failure: the disk stops answering (DiskArray uses this
//    to model the loss of one array member);
//  - power cuts: the device dies after a scheduled number of sectors has
//    been written. A cut landing mid-write leaves only a prefix of the
//    data on the platter — or, with torn writes enabled, an interleaved
//    shred where a seeded subset of the remaining sectors also landed.
//    The crash-consistency layer (src/vafs/persistence.h) is proven
//    against every such crash point.
//
// Determinism contract: all randomness comes from one explicitly seeded
// xoshiro stream, consulted exactly once per eligible operation, so a
// given (seed, operation sequence) always yields the same fault schedule.
// With rates at zero and no bad ranges the injector never draws from the
// stream and never fails anything — a disabled injector is bit-identical
// to no injector at all.

#ifndef VAFS_SRC_DISK_FAULT_INJECTOR_H_
#define VAFS_SRC_DISK_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/util/prng.h"

namespace vafs {

// A latent defect: sectors [start_sector, start_sector + sectors).
struct BadRange {
  int64_t start_sector = 0;
  int64_t sectors = 0;

  bool Overlaps(int64_t start, int64_t count) const {
    return start < start_sector + sectors && start_sector < start + count;
  }
};

struct FaultOptions {
  uint64_t seed = 0;
  // Independent per-operation transient failure probabilities, in [0, 1].
  double read_fault_rate = 0.0;
  double write_fault_rate = 0.0;
  // Latent defects present from construction (more can be added later).
  std::vector<BadRange> bad_ranges;
  // Service-time factor a salvage read pays (ECC heroics, re-reads at
  // reduced speed) relative to a normal read of the same extent.
  double salvage_cost_multiplier = 3.0;
  // Power-cut schedule: the device loses power once this many sectors have
  // been durably written (counted across all writes); -1 = never. The
  // write in flight when the budget expires persists only its leading
  // sectors. A crashed device fails every operation until PowerRestore.
  int64_t crash_after_sectors = -1;
  // When the cut lands mid-write: false leaves a clean prefix on the
  // platter; true additionally lands a seeded subset of the remaining
  // sectors (an interleaved shred — what a drive without atomic multi-
  // sector writes can leave behind).
  bool torn_writes = false;

  bool AnyTransient() const { return read_fault_rate > 0.0 || write_fault_rate > 0.0; }
};

// The injector's ruling on how much of one write survives a power cut.
struct CrashVerdict {
  bool power_cut = false;      // this write tripped the schedule
  int64_t prefix_sectors = 0;  // leading sectors that reached the platter
  // With torn writes: survival of each sector past the prefix (empty when
  // the cut is clean or absent).
  std::vector<bool> shred;
};

// What the injector decided about one operation.
enum class FaultKind {
  kNone,       // operation proceeds normally
  kTransient,  // recoverable error: a retry may succeed
  kBadSector,  // latent media defect: every attempt fails until relocated
};

const char* FaultKindName(FaultKind kind);

class FaultInjector {
 public:
  explicit FaultInjector(FaultOptions options);

  const FaultOptions& options() const { return options_; }

  // Fate of a read / write of [start_sector, start_sector + sectors).
  // Bad ranges dominate transient faults (the defect is certain; the coin
  // flip is not consulted for an extent that is doomed anyway).
  FaultKind OnRead(int64_t start_sector, int64_t sectors);
  FaultKind OnWrite(int64_t start_sector, int64_t sectors);

  // Declares a latent defect at runtime (e.g. a scrub discovering one).
  void MarkBad(int64_t start_sector, int64_t sectors);
  // Clears any defect overlapping the extent (sector remapped/repaired).
  void ClearBad(int64_t start_sector, int64_t sectors);
  bool IsBad(int64_t start_sector, int64_t sectors) const;

  // Runtime tuning of the transient rates (tests force failures of the
  // next operation deterministically with rate 1.0, then restore).
  void set_read_fault_rate(double rate) { options_.read_fault_rate = rate; }
  void set_write_fault_rate(double rate) { options_.write_fault_rate = rate; }

  // --- Power-cut schedule -----------------------------------------------------

  // Consulted once per write of `sectors`: advances the written-sector
  // budget and rules whether the power dies during this write. After a cut
  // the device is powered off and every later call reports a cut with a
  // zero prefix.
  CrashVerdict OnWriteCrashCheck(int64_t sectors);

  // (Re)arms the schedule at runtime: the cut lands once `after_sectors`
  // more sectors are written from this instant.
  void ArmPowerCut(int64_t after_sectors, bool torn = false);

  // Restores power (the host rebooted); the pending schedule, if any, is
  // disarmed — recovery runs against a healthy device.
  void PowerRestore();

  bool powered_off() const { return powered_off_; }

  // Lifetime fault counters, by class.
  int64_t transient_read_faults() const { return transient_read_faults_; }
  int64_t transient_write_faults() const { return transient_write_faults_; }
  int64_t bad_sector_hits() const { return bad_sector_hits_; }
  int64_t power_cuts() const { return power_cuts_; }
  // Sectors durably written since construction (or the last ArmPowerCut);
  // the crash matrix uses it to enumerate every write boundary of a phase.
  int64_t sectors_written() const { return sectors_written_; }

 private:
  FaultKind Decide(double rate, int64_t start_sector, int64_t sectors, int64_t* transient_counter);

  FaultOptions options_;
  Prng prng_;
  // Separate stream for torn-write shreds so arming a crash never perturbs
  // the transient-fault schedule of the main stream.
  Prng shred_prng_;
  bool powered_off_ = false;
  int64_t sectors_written_ = 0;
  int64_t transient_read_faults_ = 0;
  int64_t transient_write_faults_ = 0;
  int64_t bad_sector_hits_ = 0;
  int64_t power_cuts_ = 0;
};

}  // namespace vafs

#endif  // VAFS_SRC_DISK_FAULT_INJECTOR_H_
