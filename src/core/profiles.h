// Parameter bundles for the continuity model (paper Table 1).
//
// The analysis relates three groups of quantities:
//   - media characteristics: recording rate R and unit size s (MediaProfile),
//   - device characteristics: display/consumption rate R_dp and the number
//     of internal buffers on the media device (DeviceProfile),
//   - storage characteristics: transfer rate R_dt and positioning costs
//     (StorageTimings, extracted from a DiskModel).
// All durations here are real-valued seconds, matching the equations.

#ifndef VAFS_SRC_CORE_PROFILES_H_
#define VAFS_SRC_CORE_PROFILES_H_

#include <cstdint>

#include "src/disk/disk_model.h"
#include "src/media/media.h"
#include "src/util/time.h"

namespace vafs {

// Display-path characteristics of a media output device.
struct DeviceProfile {
  // Rate at which the device drains a block through decompression and
  // digital-to-analog conversion (the paper's R_dp), in bits/second.
  double display_rate_bits_per_sec = 0.0;

  // Internal device buffer capacity in media units (the paper's f frames).
  int64_t buffer_units = 1;

  // Time to display (decode + DAC) a block of `block_bits` bits.
  double DisplayTime(double block_bits) const { return block_bits / display_rate_bits_per_sec; }
};

// Storage-path characteristics, as consumed by the continuity equations.
struct StorageTimings {
  // Sustained transfer rate R_dt in bits/second.
  double transfer_rate_bits_per_sec = 0.0;

  // Worst-case positioning cost between two arbitrary blocks, l_seek^max
  // (full-stroke seek plus worst rotational latency), in seconds.
  double max_access_gap_sec = 0.0;

  // Expected rotational latency in seconds (part of every access gap).
  double avg_rotational_latency_sec = 0.0;

  // Time to transfer a block of `block_bits` bits.
  double TransferTime(double block_bits) const { return block_bits / transfer_rate_bits_per_sec; }

  // Extracts the timing figures from a disk model.
  static StorageTimings FromDiskModel(const DiskModel& model);

  // Aggregate timings for an array of `members` such disks operated
  // concurrently (used by the HDTV feasibility bench): positioning costs
  // are per-member, bandwidth scales with the member count.
  static StorageTimings FromDiskModelArray(const DiskModel& member_model, int members);
};

}  // namespace vafs

#endif  // VAFS_SRC_CORE_PROFILES_H_
