// Copy bounds for scattering maintenance during editing (Section 4.2,
// Eqs. 19-20).
//
// An edited rope strings together intervals of immutable strands. Within
// an interval the scattering bound holds by construction, but the hop from
// the last block of one interval to the first block of the next can be as
// bad as a full worst-case reposition. The paper bounds the repair cost:
// redistributing the first C_b blocks of the following interval (or the
// last C_a of the preceding one) restores the bound, with
//
//   C_b = l_seek_max / (2 * l_ds_lower)   on a sparsely occupied disk (Eq. 19)
//   C_b = l_seek_max / l_ds_lower         on a densely occupied disk (Eq. 20)
//
// where l_ds_lower is the strand's lower scattering bound. Immutability
// means the copied blocks form a brand-new strand.

#ifndef VAFS_SRC_CORE_EDITING_BOUNDS_H_
#define VAFS_SRC_CORE_EDITING_BOUNDS_H_

#include <cstdint>

namespace vafs {

// Occupancy regimes of Eqs. 19-20.
enum class DiskOccupancy {
  kSparse,
  kDense,
};

// Maximum number of blocks that must be copied to repair one interval
// boundary. `max_access_gap_sec` is l_seek_max; `min_scattering_sec` is
// the strand's lower scattering bound l_ds_lower.
int64_t EditCopyBound(double max_access_gap_sec, double min_scattering_sec,
                      DiskOccupancy occupancy);

// The repair copies min(C_a, C_b) blocks, choosing the cheaper side of the
// boundary; both sides use the same formula with their own lower bounds.
int64_t EditCopyBoundAtBoundary(double max_access_gap_sec, double preceding_min_scattering_sec,
                                double following_min_scattering_sec, DiskOccupancy occupancy);

}  // namespace vafs

#endif  // VAFS_SRC_CORE_EDITING_BOUNDS_H_
