// Continuity model: Equations 1-6 of the paper and the derivation of
// storage granularity and scattering parameters from them (Section 3).
//
// For a strand of granularity q (units/block), unit size s (bits) and
// recording rate R (units/sec), retrieved from a disk with transfer rate
// R_dt and displayed at rate R_dp, the continuity requirement under each
// retrieval architecture bounds the scattering parameter l_ds (the
// positioning gap between consecutive blocks of the strand):
//
//   sequential (Eq. 1):  l_ds + q*s/R_dt + q*s/R_dp <= q/R
//   pipelined  (Eq. 2):  l_ds + q*s/R_dt            <= q/R
//   concurrent (Eq. 3):  l_ds + q*s/R_dt            <= (p-1) * q/R
//
// Mixed audio+video retrieval over homogeneous blocks (Eq. 5), where one
// audio block plays as long as n video blocks:
//
//   n*(l_ds + qv*sv/R_dt) + (l_ds + qa*sa/R_dt) <= n * qv/Rv
//
// and over heterogeneous blocks, or homogeneous blocks co-located so that
// the audio->video gap vanishes (Eq. 6):
//
//   (qv*sv + qa*sa)/R_dt + l_ds <= qv/Rv
//
// Section 3.3 adds buffering/read-ahead counts for strict and k-block
// average continuity, the extra read-ahead h before a task switch (Eq. 4),
// and rate-scaled continuity for fast-forward and slow motion.

#ifndef VAFS_SRC_CORE_CONTINUITY_H_
#define VAFS_SRC_CORE_CONTINUITY_H_

#include <cstdint>

#include "src/core/profiles.h"
#include "src/media/media.h"
#include "src/util/result.h"

namespace vafs {

enum class RetrievalArchitecture {
  kSequential,  // read and display serialized (Fig. 1)
  kPipelined,   // read overlaps display, two device buffers (Fig. 2)
  kConcurrent,  // p parallel disk accesses (Fig. 3)
};

const char* ArchitectureName(RetrievalArchitecture arch);

// Per-strand placement decision: how many media units go in a block, and
// the bounds on the positioning gap between consecutive blocks.
struct StrandPlacement {
  int64_t granularity = 1;          // q, units per block
  double min_scattering_sec = 0.0;  // lower bound on l_ds (edit copy bound, Sec. 4.2)
  double max_scattering_sec = 0.0;  // upper bound on l_ds (continuity)
};

class ContinuityModel {
 public:
  // `concurrency` is the paper's p, meaningful for kConcurrent only.
  ContinuityModel(StorageTimings storage, DeviceProfile device, int concurrency = 1);

  const StorageTimings& storage() const { return storage_; }
  const DeviceProfile& device() const { return device_; }
  int concurrency() const { return concurrency_; }

  // --- Elementary durations (Table 1 derived quantities) -------------------

  // Playback duration of a block: q / R.
  static double BlockPlaybackDuration(const MediaProfile& media, int64_t granularity);

  // Disk transfer time of a block: q*s / R_dt.
  double BlockTransferTime(const MediaProfile& media, int64_t granularity) const;

  // Display (decode + DAC) time of a block: q*s / R_dp.
  double BlockDisplayTime(const MediaProfile& media, int64_t granularity) const;

  // --- Single-medium continuity (Eqs. 1-3) ---------------------------------

  // Largest scattering parameter under which continuity holds for the given
  // architecture at `rate_multiplier` x normal playback speed (1.0 = normal;
  // > 1 models fast-forward without frame skipping). May be negative, which
  // means the configuration is infeasible at any placement.
  double MaxScattering(RetrievalArchitecture arch, const MediaProfile& media,
                       int64_t granularity, double rate_multiplier = 1.0) const;

  // Continuity predicate for a concrete scattering value.
  bool SatisfiesContinuity(RetrievalArchitecture arch, const MediaProfile& media,
                           int64_t granularity, double scattering_sec,
                           double rate_multiplier = 1.0) const;

  // --- Mixed media (Eqs. 5-6) ----------------------------------------------

  // Max scattering for interleaved retrieval of one video and one audio
  // strand from homogeneous blocks (Eq. 5). `n` = audio block playback
  // duration / video block playback duration, derived from granularities.
  double MaxScatteringMixedHomogeneous(const MediaProfile& video, int64_t video_granularity,
                                       const MediaProfile& audio,
                                       int64_t audio_granularity) const;

  // Max scattering when each block carries both media, or when audio and
  // video blocks are adjacent so the intra-pair gap vanishes (Eq. 6).
  double MaxScatteringMixedHeterogeneous(const MediaProfile& video, int64_t video_granularity,
                                         const MediaProfile& audio,
                                         int64_t audio_granularity) const;

  // --- Granularity selection (Sec. 3.3.4) ----------------------------------

  // Largest granularity the display device's internal buffers allow:
  //   sequential: f, pipelined: f/2 (double buffering), concurrent: f/p.
  int64_t MaxGranularityForDevice(RetrievalArchitecture arch, const MediaProfile& media) const;

  // Chooses the largest device-feasible granularity with a positive
  // scattering bound, and fills in both scattering bounds (the lower bound
  // comes from the editing copy-bound argument and is a caller policy;
  // here it is set to one average rotational latency, the smallest
  // physically meaningful gap). Fails if no granularity satisfies
  // continuity.
  Result<StrandPlacement> DerivePlacement(RetrievalArchitecture arch,
                                          const MediaProfile& media) const;

  // --- Buffering and read-ahead (Sec. 3.3.2, Eq. 4) -------------------------

  struct BufferingPlan {
    int64_t read_ahead_blocks = 0;  // blocks fetched before playback starts
    int64_t device_buffers = 0;     // device-side block buffers needed
  };

  // Buffer/read-ahead counts when continuity is satisfied over an average
  // of `k` consecutive blocks (k = 1 is the strict requirement):
  // sequential k & k, pipelined k & 2k, concurrent p*k & p*k.
  BufferingPlan PlanBuffering(RetrievalArchitecture arch, int64_t k) const;

  // Extra read-ahead h (Eq. 4) needed before the disk switches to another
  // task: enough blocks to cover a worst-case reposition, h =
  // ceil(l_seek_max / block playback duration).
  int64_t ExtraReadAheadForTaskSwitch(const MediaProfile& media, int64_t granularity) const;

 private:
  StorageTimings storage_;
  DeviceProfile device_;
  int concurrency_;
};

}  // namespace vafs

#endif  // VAFS_SRC_CORE_CONTINUITY_H_
