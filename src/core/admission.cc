#include "src/core/admission.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <string>

namespace vafs {

AdmissionControl::AdmissionControl(StorageTimings storage, double avg_scattering_sec)
    : storage_(storage), avg_scattering_sec_(avg_scattering_sec) {
  assert(storage_.transfer_rate_bits_per_sec > 0);
  assert(avg_scattering_sec_ >= 0);
  assert(avg_scattering_sec_ <= storage_.max_access_gap_sec);
}

AdmissionControl::Analysis AdmissionControl::Analyze(
    const std::vector<RequestSpec>& requests) const {
  Analysis analysis;
  analysis.n = static_cast<int64_t>(requests.size());
  if (requests.empty()) {
    return analysis;
  }
  double total_block_bits = 0.0;
  double gamma = std::numeric_limits<double>::infinity();
  for (const RequestSpec& request : requests) {
    total_block_bits += request.BlockBits();
    gamma = std::min(gamma, request.BlockPlaybackDuration());
  }
  const double avg_transfer =
      total_block_bits / static_cast<double>(requests.size()) / storage_.transfer_rate_bits_per_sec;
  analysis.alpha_sec = storage_.max_access_gap_sec + avg_transfer;  // Eq. 12
  analysis.beta_sec = avg_scattering_sec_ + avg_transfer;           // Eq. 13
  analysis.gamma_sec = gamma;                                       // Eq. 14
  // Eq. 17: gamma > n*beta must hold, so n_max = ceil(gamma/beta) - 1.
  analysis.n_max =
      static_cast<int64_t>(std::ceil(analysis.gamma_sec / analysis.beta_sec)) - 1;
  return analysis;
}

namespace {

// Shared solver for Eqs. 16 and 18: k >= numerator / (gamma - n*beta).
Result<int64_t> SolveForK(const AdmissionControl::Analysis& analysis, double numerator) {
  const double n = static_cast<double>(analysis.n);
  const double headroom = analysis.gamma_sec - n * analysis.beta_sec;
  if (headroom <= 0) {
    return Status(ErrorCode::kAdmissionRejected,
                  "no finite round size: n=" + std::to_string(analysis.n) +
                      " exceeds the service ceiling n_max=" + std::to_string(analysis.n_max));
  }
  const double k = numerator / headroom;
  return std::max<int64_t>(1, static_cast<int64_t>(std::ceil(k)));
}

}  // namespace

Result<int64_t> AdmissionControl::SteadyStateBlocksPerRound(
    const std::vector<RequestSpec>& requests) const {
  if (requests.empty()) {
    return static_cast<int64_t>(1);
  }
  const Analysis analysis = Analyze(requests);
  // Eq. 16: k = n*(alpha - beta) / (gamma - n*beta).
  const double numerator =
      static_cast<double>(analysis.n) * (analysis.alpha_sec - analysis.beta_sec);
  return SolveForK(analysis, numerator);
}

Result<int64_t> AdmissionControl::TransientSafeBlocksPerRound(
    const std::vector<RequestSpec>& requests) const {
  if (requests.empty()) {
    return static_cast<int64_t>(1);
  }
  const Analysis analysis = Analyze(requests);
  // Eq. 18: k = n*alpha / (gamma - n*beta). Transferring k+1 blocks within
  // the playback of k guarantees each single-step k increase is seamless.
  const double numerator = static_cast<double>(analysis.n) * analysis.alpha_sec;
  return SolveForK(analysis, numerator);
}

bool AdmissionControl::Feasible(const std::vector<RequestSpec>& requests) const {
  if (requests.empty()) {
    return true;
  }
  const Analysis analysis = Analyze(requests);
  return analysis.gamma_sec > static_cast<double>(analysis.n) * analysis.beta_sec;
}

Result<std::vector<int64_t>> AdmissionControl::PlanAdmission(
    const std::vector<RequestSpec>& existing, const RequestSpec& candidate,
    int64_t current_k) const {
  std::vector<RequestSpec> combined = existing;
  combined.push_back(candidate);
  auto emit = [&](obs::TraceEventKind kind, int64_t target_k, const std::string& detail) {
    if (trace_ == nullptr) {
      return;
    }
    obs::TraceEvent event;
    event.kind = kind;
    event.k = current_k;
    event.existing = static_cast<int64_t>(existing.size());
    event.target_k = target_k;
    event.n_max = Analyze(combined).n_max;
    event.detail = detail;
    trace_->OnEvent(event);
  };
  Result<int64_t> target = TransientSafeBlocksPerRound(combined);
  if (!target.ok()) {
    emit(obs::TraceEventKind::kAdmissionReject, 0, target.status().message());
    return target.status();
  }
  emit(obs::TraceEventKind::kAdmissionPlan, std::max(*target, current_k), "");
  std::vector<int64_t> schedule;
  if (*target <= current_k) {
    // The current round size already covers the enlarged set; the new
    // request starts in the next round.
    schedule.push_back(current_k);
    return schedule;
  }
  // Raise k one step per round (Section 3.4): each k -> k+1 transition is
  // guaranteed seamless by Eq. 18, whereas jumping straight to the target
  // may stall existing streams for the difference.
  for (int64_t k = current_k + 1; k <= *target; ++k) {
    schedule.push_back(k);
  }
  return schedule;
}

Result<std::vector<int64_t>> AdmissionControl::PerRequestBlocksPerRound(
    const std::vector<RequestSpec>& requests) const {
  if (requests.empty()) {
    return std::vector<int64_t>{};
  }
  const size_t n = requests.size();
  std::vector<int64_t> k(n, 1);
  std::vector<double> alpha(n);
  std::vector<double> beta(n);
  std::vector<double> duration(n);
  for (size_t i = 0; i < n; ++i) {
    const double transfer = requests[i].BlockBits() / storage_.transfer_rate_bits_per_sec;
    alpha[i] = storage_.max_access_gap_sec + transfer;
    beta[i] = avg_scattering_sec_ + transfer;
    duration[i] = requests[i].BlockPlaybackDuration();
    if (beta[i] >= duration[i]) {
      // This request alone cannot keep up: each extra block costs more
      // round time than it buys playback.
      return Status(ErrorCode::kAdmissionRejected,
                    "request " + std::to_string(i) + " transfers slower than it plays");
    }
  }

  // Grow the k_i whose playback budget k_i * d_i currently binds Eq. 11.
  // Each step strictly raises the binding budget by d_i > beta_i (its
  // round-time cost), so progress toward feasibility is monotone; if the
  // aggregate can never catch up the budgets exceed every k cap and we
  // reject.
  constexpr int64_t kMaxRoundBlocks = 1 << 16;
  while (true) {
    double round = 0.0;
    for (size_t i = 0; i < n; ++i) {
      round += alpha[i] + static_cast<double>(k[i] - 1) * beta[i];
    }
    size_t binding = 0;
    double min_budget = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      const double budget = static_cast<double>(k[i]) * duration[i];
      if (budget < min_budget) {
        min_budget = budget;
        binding = i;
      }
    }
    if (round <= min_budget) {
      return k;
    }
    if (k[binding] >= kMaxRoundBlocks) {
      return Status(ErrorCode::kAdmissionRejected,
                    "no per-request round assignment satisfies Eq. 11");
    }
    ++k[binding];
  }
}

double AdmissionControl::RoundTime(const std::vector<RequestSpec>& requests,
                                   const std::vector<int64_t>& blocks_per_round) const {
  assert(requests.size() == blocks_per_round.size());
  double total = 0.0;
  for (size_t i = 0; i < requests.size(); ++i) {
    const double transfer = requests[i].BlockBits() / storage_.transfer_rate_bits_per_sec;
    // Eq. 7: switch in, then the first block.
    total += storage_.max_access_gap_sec + transfer;
    // Eq. 8: the remaining k_i - 1 blocks at the strand's scattering.
    total += static_cast<double>(blocks_per_round[i] - 1) * (avg_scattering_sec_ + transfer);
  }
  return total;  // Eq. 10
}

bool AdmissionControl::FeasibleRound(const std::vector<RequestSpec>& requests,
                                     const std::vector<int64_t>& blocks_per_round) const {
  if (requests.empty()) {
    return true;
  }
  const double round = RoundTime(requests, blocks_per_round);
  double min_playback = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < requests.size(); ++i) {
    min_playback = std::min(min_playback, static_cast<double>(blocks_per_round[i]) *
                                              requests[i].BlockPlaybackDuration());
  }
  return round <= min_playback;  // Eq. 11
}

}  // namespace vafs
