// Admission control for multiple concurrent requests (paper Section 3.4).
//
// The file system services n active requests in rounds, transferring k
// consecutive blocks per request per round. Switching between requests
// costs up to a full worst-case reposition (no placement relation holds
// between different strands), while blocks within a request cost the
// strand's average scattering. With
//
//   alpha = l_seek_max + q*s/R_dt   (first block of a request in a round, Eq. 12)
//   beta  = l_ds_avg  + q*s/R_dt    (each subsequent block, Eq. 13)
//   gamma = min_i (q_i / R_i)       (fastest consumer's block playback, Eq. 14)
//
// steady-state continuity requires  n*alpha + n*(k-1)*beta <= k*gamma
// (Eq. 15), giving k = ceil(n*(alpha-beta) / (gamma - n*beta)) (Eq. 16) and
// a service ceiling n_max = ceil(gamma/beta) - 1 (Eq. 17). Admitting a new
// request may raise k, and jumping straight to the new k can glitch
// existing streams; the transient-safe variant n*alpha + n*k*beta <= k*gamma
// (Eq. 18) guarantees every k -> k+1 step is glitch-free, so admission
// raises k one step per round (Section 3.4's transition argument).

#ifndef VAFS_SRC_CORE_ADMISSION_H_
#define VAFS_SRC_CORE_ADMISSION_H_

#include <cstdint>
#include <vector>

#include "src/core/profiles.h"
#include "src/media/media.h"
#include "src/obs/trace.h"
#include "src/util/result.h"

namespace vafs {

// What admission control needs to know about one active request.
struct RequestSpec {
  MediaProfile profile;     // R_i and s_i
  int64_t granularity = 1;  // q_i

  // Bits transferred per block of this request.
  double BlockBits() const { return static_cast<double>(granularity * profile.bits_per_unit); }

  // Playback duration of one block, q_i / R_i.
  double BlockPlaybackDuration() const {
    return static_cast<double>(granularity) / profile.units_per_sec;
  }
};

class AdmissionControl {
 public:
  // `avg_scattering_sec` is the fleet-wide average realized scattering
  // l_ds^avg used in beta; callers typically take it from the allocator's
  // placement statistics or from the strand placement's bounds.
  AdmissionControl(StorageTimings storage, double avg_scattering_sec);

  double avg_scattering_sec() const { return avg_scattering_sec_; }

  // Optional observability: PlanAdmission reports each decision (the
  // existing-set size, the combined set's n_max, and the planned k target)
  // to `sink`. The sink must outlive this object and its copies.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }

  // The Eq. 12-14 aggregates for a request set.
  struct Analysis {
    double alpha_sec = 0.0;
    double beta_sec = 0.0;
    double gamma_sec = 0.0;
    int64_t n = 0;
    // Largest request count serviceable at all (Eq. 17), given this set's
    // gamma and average block size.
    int64_t n_max = 0;
  };
  Analysis Analyze(const std::vector<RequestSpec>& requests) const;

  // Steady-state blocks-per-round (Eq. 16). Fails if gamma <= n*beta, i.e.
  // no finite k satisfies continuity. Results are clamped to >= 1.
  Result<int64_t> SteadyStateBlocksPerRound(const std::vector<RequestSpec>& requests) const;

  // Transient-safe blocks-per-round (Eq. 18): the k from which every
  // single-step increase preserves continuity mid-transition.
  Result<int64_t> TransientSafeBlocksPerRound(const std::vector<RequestSpec>& requests) const;

  // Whether `requests` can all be serviced with some finite k.
  bool Feasible(const std::vector<RequestSpec>& requests) const;

  // Admission decision: given the currently served set and its current k,
  // decide whether `candidate` can join. On success returns the schedule
  // of k values to step through, one per round ({k} alone if k is already
  // sufficient); the candidate starts only after the last step.
  Result<std::vector<int64_t>> PlanAdmission(const std::vector<RequestSpec>& existing,
                                             const RequestSpec& candidate,
                                             int64_t current_k) const;

  // --- General (per-request k_i) formulation, Eqs. 7-11 --------------------

  // Solves the general formulation the paper leaves open ("Determination
  // of k1, k2, ..., kn in this most general formulation is beyond the
  // scope of this paper"): finds a minimal per-request round assignment
  // satisfying Eq. 11, by repeatedly growing the k_i that currently binds
  // the playback side. Heterogeneous request mixes (slow audio next to
  // fast video) admit with smaller fast-side rounds than the uniform-k
  // simplification forces, shrinking startup latency and buffering.
  Result<std::vector<int64_t>> PerRequestBlocksPerRound(
      const std::vector<RequestSpec>& requests) const;

  // Duration of one service round transferring blocks_per_round[i] blocks
  // for request i (Eqs. 7-10).
  double RoundTime(const std::vector<RequestSpec>& requests,
                   const std::vector<int64_t>& blocks_per_round) const;

  // Continuity feasibility of a concrete round assignment (Eq. 11): the
  // round must not outlast the playback of any request's fetched blocks.
  bool FeasibleRound(const std::vector<RequestSpec>& requests,
                     const std::vector<int64_t>& blocks_per_round) const;

 private:
  StorageTimings storage_;
  double avg_scattering_sec_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace vafs

#endif  // VAFS_SRC_CORE_ADMISSION_H_
