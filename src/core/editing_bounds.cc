#include "src/core/editing_bounds.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace vafs {

int64_t EditCopyBound(double max_access_gap_sec, double min_scattering_sec,
                      DiskOccupancy occupancy) {
  assert(max_access_gap_sec > 0);
  assert(min_scattering_sec > 0);
  const double m = max_access_gap_sec / min_scattering_sec;
  const double bound = occupancy == DiskOccupancy::kSparse ? m / 2.0 : m;  // Eqs. 19 / 20
  return std::max<int64_t>(0, static_cast<int64_t>(std::ceil(bound)));
}

int64_t EditCopyBoundAtBoundary(double max_access_gap_sec, double preceding_min_scattering_sec,
                                double following_min_scattering_sec, DiskOccupancy occupancy) {
  const int64_t preceding =
      EditCopyBound(max_access_gap_sec, preceding_min_scattering_sec, occupancy);
  const int64_t following =
      EditCopyBound(max_access_gap_sec, following_min_scattering_sec, occupancy);
  return std::min(preceding, following);
}

}  // namespace vafs
