#include "src/core/profiles.h"

namespace vafs {

StorageTimings StorageTimings::FromDiskModel(const DiskModel& model) {
  StorageTimings timings;
  timings.transfer_rate_bits_per_sec = model.TransferRateBitsPerSec();
  timings.max_access_gap_sec = UsecToSeconds(model.MaxAccessGap());
  timings.avg_rotational_latency_sec = UsecToSeconds(model.AverageRotationalLatency());
  return timings;
}

StorageTimings StorageTimings::FromDiskModelArray(const DiskModel& member_model, int members) {
  StorageTimings timings = FromDiskModel(member_model);
  timings.transfer_rate_bits_per_sec *= static_cast<double>(members);
  return timings;
}

}  // namespace vafs
