#include "src/core/continuity.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

namespace vafs {

const char* ArchitectureName(RetrievalArchitecture arch) {
  switch (arch) {
    case RetrievalArchitecture::kSequential:
      return "sequential";
    case RetrievalArchitecture::kPipelined:
      return "pipelined";
    case RetrievalArchitecture::kConcurrent:
      return "concurrent";
  }
  return "unknown";
}

ContinuityModel::ContinuityModel(StorageTimings storage, DeviceProfile device, int concurrency)
    : storage_(storage), device_(device), concurrency_(concurrency) {
  assert(storage_.transfer_rate_bits_per_sec > 0);
  assert(concurrency_ >= 1);
}

double ContinuityModel::BlockPlaybackDuration(const MediaProfile& media, int64_t granularity) {
  return static_cast<double>(granularity) / media.units_per_sec;
}

double ContinuityModel::BlockTransferTime(const MediaProfile& media, int64_t granularity) const {
  return storage_.TransferTime(static_cast<double>(granularity * media.bits_per_unit));
}

double ContinuityModel::BlockDisplayTime(const MediaProfile& media, int64_t granularity) const {
  assert(device_.display_rate_bits_per_sec > 0);
  return device_.DisplayTime(static_cast<double>(granularity * media.bits_per_unit));
}

double ContinuityModel::MaxScattering(RetrievalArchitecture arch, const MediaProfile& media,
                                      int64_t granularity, double rate_multiplier) const {
  assert(granularity > 0);
  assert(rate_multiplier > 0);
  // Fast-forward at m x speed shrinks each block's playback duration m-fold.
  const double playback = BlockPlaybackDuration(media, granularity) / rate_multiplier;
  const double transfer = BlockTransferTime(media, granularity);
  switch (arch) {
    case RetrievalArchitecture::kSequential:
      return playback - transfer - BlockDisplayTime(media, granularity);
    case RetrievalArchitecture::kPipelined:
      return playback - transfer;
    case RetrievalArchitecture::kConcurrent:
      return static_cast<double>(concurrency_ - 1) * playback - transfer;
  }
  return 0.0;
}

bool ContinuityModel::SatisfiesContinuity(RetrievalArchitecture arch, const MediaProfile& media,
                                          int64_t granularity, double scattering_sec,
                                          double rate_multiplier) const {
  return scattering_sec <= MaxScattering(arch, media, granularity, rate_multiplier);
}

double ContinuityModel::MaxScatteringMixedHomogeneous(const MediaProfile& video,
                                                      int64_t video_granularity,
                                                      const MediaProfile& audio,
                                                      int64_t audio_granularity) const {
  // n: how many video-block playback durations one audio block spans. The
  // paper assumes audio blocks are sized so n >= 1.
  const double video_duration = BlockPlaybackDuration(video, video_granularity);
  const double audio_duration = BlockPlaybackDuration(audio, audio_granularity);
  const double n = audio_duration / video_duration;
  // The paper assumes audio blocks span at least one video block; allow a
  // hair under 1 from granularity rounding, but nothing smaller.
  assert(n > 0.99);
  // Eq. 5: n*(l + Tv) + (l + Ta) <= n * video_duration, solve for l.
  const double transfer_video = BlockTransferTime(video, video_granularity);
  const double transfer_audio = BlockTransferTime(audio, audio_granularity);
  return (n * video_duration - n * transfer_video - transfer_audio) / (n + 1.0);
}

double ContinuityModel::MaxScatteringMixedHeterogeneous(const MediaProfile& video,
                                                        int64_t video_granularity,
                                                        const MediaProfile& audio,
                                                        int64_t audio_granularity) const {
  // Eq. 6: the audio payload rides along with every video block (or sits
  // adjacent to it), so one gap per combined block.
  const double video_duration = BlockPlaybackDuration(video, video_granularity);
  const double combined_bits = static_cast<double>(video_granularity * video.bits_per_unit +
                                                   audio_granularity * audio.bits_per_unit);
  return video_duration - storage_.TransferTime(combined_bits);
}

int64_t ContinuityModel::MaxGranularityForDevice(RetrievalArchitecture arch,
                                                 const MediaProfile& media) const {
  (void)media;
  const int64_t f = device_.buffer_units;
  switch (arch) {
    case RetrievalArchitecture::kSequential:
      return std::max<int64_t>(1, f);
    case RetrievalArchitecture::kPipelined:
      return std::max<int64_t>(1, f / 2);
    case RetrievalArchitecture::kConcurrent:
      return std::max<int64_t>(1, f / concurrency_);
  }
  return 1;
}

Result<StrandPlacement> ContinuityModel::DerivePlacement(RetrievalArchitecture arch,
                                                         const MediaProfile& media) const {
  const int64_t max_granularity = MaxGranularityForDevice(arch, media);
  // MaxScattering grows with q for any feasible configuration (playback
  // duration scales with q faster than the fixed gap), so prefer the
  // largest device-feasible granularity; walk down only if infeasible.
  for (int64_t q = max_granularity; q >= 1; --q) {
    const double bound = MaxScattering(arch, media, q);
    // Every reposition pays at least the rotational latency, so a bound
    // below it is physically unplaceable even though the equation is
    // non-negative.
    if (bound >= storage_.avg_rotational_latency_sec) {
      StrandPlacement placement;
      placement.granularity = q;
      placement.max_scattering_sec = bound;
      // Lower bound: consecutive blocks of one strand can never be closer
      // in time than the rotational latency paid on every reposition.
      placement.min_scattering_sec =
          std::min(storage_.avg_rotational_latency_sec, bound);
      return placement;
    }
  }
  return Status(ErrorCode::kAdmissionRejected,
                std::string("no granularity satisfies continuity for ") + media.ToString() +
                    " under the " + ArchitectureName(arch) + " architecture");
}

ContinuityModel::BufferingPlan ContinuityModel::PlanBuffering(RetrievalArchitecture arch,
                                                              int64_t k) const {
  assert(k >= 1);
  BufferingPlan plan;
  switch (arch) {
    case RetrievalArchitecture::kSequential:
      plan.read_ahead_blocks = k;
      plan.device_buffers = k;
      break;
    case RetrievalArchitecture::kPipelined:
      // One set of k buffers drains while the other set fills.
      plan.read_ahead_blocks = k;
      plan.device_buffers = 2 * k;
      break;
    case RetrievalArchitecture::kConcurrent:
      plan.read_ahead_blocks = concurrency_ * k;
      plan.device_buffers = concurrency_ * k;
      break;
  }
  return plan;
}

int64_t ContinuityModel::ExtraReadAheadForTaskSwitch(const MediaProfile& media,
                                                     int64_t granularity) const {
  // Eq. 4: h = ceil(l_seek_max * playback rate in blocks/sec).
  const double block_duration = BlockPlaybackDuration(media, granularity);
  return static_cast<int64_t>(std::ceil(storage_.max_access_gap_sec / block_duration));
}

}  // namespace vafs
