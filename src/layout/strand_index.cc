#include "src/layout/strand_index.h"

#include <cassert>
#include <cstring>
#include <span>
#include <string>

#include "src/util/checksum.h"
#include "src/util/units.h"

namespace vafs {

namespace {

void PutI64(std::vector<uint8_t>* out, int64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(static_cast<uint64_t>(value) >> (8 * i)));
  }
}

void PutF64(std::vector<uint8_t>* out, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  PutI64(out, static_cast<int64_t>(bits));
}

int64_t GetI64(const std::vector<uint8_t>& in, size_t offset) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(in[offset + static_cast<size_t>(i)]) << (8 * i);
  }
  return static_cast<int64_t>(value);
}

}  // namespace

StrandIndex::StrandIndex(IndexFanout fanout) : fanout_(fanout) {
  assert(fanout_.entries_per_primary > 0);
  assert(fanout_.primaries_per_secondary > 0);
}

void StrandIndex::Append(const PrimaryEntry& entry) {
  assert(entry.IsSilence() ? entry.sector_count == 0
                           : (entry.sector >= 0 && entry.sector_count > 0));
  entries_.push_back(entry);
  ++block_count_;
  if (entry.IsSilence()) {
    ++silence_blocks_;
  }
}

Result<PrimaryEntry> StrandIndex::Lookup(int64_t block_number) const {
  if (block_number < 0 || block_number >= block_count_) {
    return Status(ErrorCode::kOutOfRange,
                  "block " + std::to_string(block_number) + " outside strand of " +
                      std::to_string(block_count_) + " blocks");
  }
  return entries_[static_cast<size_t>(block_number)];
}

int64_t StrandIndex::primary_block_count() const {
  return CeilDiv(block_count_, fanout_.entries_per_primary);
}

int64_t StrandIndex::secondary_block_count() const {
  return CeilDiv(primary_block_count(), fanout_.primaries_per_secondary);
}

std::vector<uint8_t> StrandIndex::SerializePrimaryBlock(int64_t pb_number) const {
  assert(pb_number >= 0 && pb_number < primary_block_count());
  const int64_t first = pb_number * fanout_.entries_per_primary;
  const int64_t last = std::min(block_count_, first + fanout_.entries_per_primary);
  std::vector<uint8_t> out;
  out.reserve(static_cast<size_t>((last - first) * 16));
  for (int64_t i = first; i < last; ++i) {
    const PrimaryEntry& entry = entries_[static_cast<size_t>(i)];
    PutI64(&out, entry.sector);
    PutI64(&out, entry.sector_count);
  }
  return out;
}

std::vector<uint8_t> StrandIndex::SerializeSecondaryBlock(
    int64_t sb_number, const std::vector<std::pair<int64_t, int64_t>>& pb_extents) const {
  assert(sb_number >= 0 && sb_number < secondary_block_count());
  assert(static_cast<int64_t>(pb_extents.size()) == primary_block_count());
  const int64_t first_pb = sb_number * fanout_.primaries_per_secondary;
  const int64_t last_pb = std::min(primary_block_count(), first_pb + fanout_.primaries_per_secondary);
  std::vector<uint8_t> out;
  for (int64_t pb = first_pb; pb < last_pb; ++pb) {
    const int64_t start_block = pb * fanout_.entries_per_primary;
    const int64_t blocks_in_pb =
        std::min(block_count_ - start_block, fanout_.entries_per_primary);
    PutI64(&out, start_block);                                   // startBlock
    PutI64(&out, blocks_in_pb);                                  // BlockCount
    PutI64(&out, pb_extents[static_cast<size_t>(pb)].first);     // sector
    PutI64(&out, pb_extents[static_cast<size_t>(pb)].second);    // sectorCount
  }
  return out;
}

// Header Block v2 layout (offsets in bytes):
//   0  magic "VAFSHB02"      48 bits_per_unit
//   8  crc64 over [16, len)  56 granularity
//   16 len (logical bytes)   64 unit_count (frameCount)
//   24 strand id             72 min_scattering_sec
//   32 medium                80 max_scattering_sec
//   40 recording_rate        88 secondaryCount, then secondaryArray
constexpr size_t kHeaderFixedBytes = 96;

std::vector<uint8_t> StrandIndex::SerializeHeaderBlock(
    const HeaderMeta& meta,
    const std::vector<std::pair<int64_t, int64_t>>& sb_extents) const {
  assert(static_cast<int64_t>(sb_extents.size()) == secondary_block_count());
  std::vector<uint8_t> out;
  PutI64(&out, static_cast<int64_t>(kHeaderBlockMagic));
  PutI64(&out, 0);  // crc placeholder
  PutI64(&out, static_cast<int64_t>(kHeaderFixedBytes + sb_extents.size() * 16));
  PutI64(&out, meta.id);
  PutI64(&out, meta.medium);
  PutF64(&out, meta.recording_rate);                             // frameRate
  PutI64(&out, meta.bits_per_unit);
  PutI64(&out, meta.granularity);
  PutI64(&out, meta.unit_count);                                 // frameCount
  PutF64(&out, meta.min_scattering_sec);
  PutF64(&out, meta.max_scattering_sec);
  PutI64(&out, static_cast<int64_t>(sb_extents.size()));         // secondaryCount
  for (const auto& [sector, sector_count] : sb_extents) {        // secondaryArray
    PutI64(&out, sector);
    PutI64(&out, sector_count);
  }
  const uint64_t crc = Crc64(std::span<const uint8_t>(out).subspan(16));
  for (int i = 0; i < 8; ++i) {
    out[8 + static_cast<size_t>(i)] = static_cast<uint8_t>(crc >> (8 * i));
  }
  return out;
}

Result<StrandIndex> StrandIndex::FromSerializedPrimaries(
    IndexFanout fanout, const std::vector<std::vector<uint8_t>>& primaries) {
  StrandIndex index(fanout);
  for (const std::vector<uint8_t>& pb : primaries) {
    if (pb.size() % 16 != 0) {
      return Status(ErrorCode::kInvalidArgument, "primary block blob not a multiple of 16 bytes");
    }
    for (size_t offset = 0; offset < pb.size(); offset += 16) {
      PrimaryEntry entry;
      entry.sector = GetI64(pb, offset);
      entry.sector_count = GetI64(pb, offset + 8);
      if (entry.IsSilence() ? entry.sector_count != 0
                            : (entry.sector < 0 || entry.sector_count <= 0)) {
        return Status(ErrorCode::kInvalidArgument, "corrupt primary entry");
      }
      index.Append(entry);
    }
  }
  return index;
}

Result<std::vector<StrandIndex::SecondaryEntry>> StrandIndex::ParseSecondaryBlock(
    const std::vector<uint8_t>& blob) {
  if (blob.size() % 32 != 0) {
    return Status(ErrorCode::kInvalidArgument, "secondary block blob not a multiple of 32 bytes");
  }
  std::vector<SecondaryEntry> entries;
  for (size_t offset = 0; offset + 32 <= blob.size(); offset += 32) {
    SecondaryEntry entry;
    entry.start_block = GetI64(blob, offset);
    entry.block_count = GetI64(blob, offset + 8);
    entry.sector = GetI64(blob, offset + 16);
    entry.sector_count = GetI64(blob, offset + 24);
    if (entry.block_count == 0) {
      break;  // sector padding
    }
    if (entry.start_block < 0 || entry.block_count < 0 || entry.sector < 0 ||
        entry.sector_count <= 0) {
      return Status(ErrorCode::kInvalidArgument, "corrupt secondary entry");
    }
    entries.push_back(entry);
  }
  return entries;
}

Result<StrandIndex::HeaderInfo> StrandIndex::ParseHeaderBlock(const std::vector<uint8_t>& blob) {
  if (blob.size() < kHeaderFixedBytes) {
    return Status(ErrorCode::kInvalidArgument, "header block too small");
  }
  if (static_cast<uint64_t>(GetI64(blob, 0)) != kHeaderBlockMagic) {
    return Status(ErrorCode::kInvalidArgument, "header block magic mismatch");
  }
  const int64_t len = GetI64(blob, 16);
  if (len < static_cast<int64_t>(kHeaderFixedBytes) ||
      static_cast<size_t>(len) > blob.size()) {
    return Status(ErrorCode::kInvalidArgument, "header block length out of bounds");
  }
  const uint64_t crc = Crc64(std::span<const uint8_t>(blob).subspan(
      16, static_cast<size_t>(len) - 16));
  if (crc != static_cast<uint64_t>(GetI64(blob, 8))) {
    return Status(ErrorCode::kInvalidArgument, "header block checksum mismatch");
  }
  HeaderInfo info;
  info.meta.id = GetI64(blob, 24);
  info.meta.medium = GetI64(blob, 32);
  uint64_t bits = static_cast<uint64_t>(GetI64(blob, 40));
  std::memcpy(&info.meta.recording_rate, &bits, sizeof(bits));
  info.meta.bits_per_unit = GetI64(blob, 48);
  info.meta.granularity = GetI64(blob, 56);
  info.meta.unit_count = GetI64(blob, 64);
  bits = static_cast<uint64_t>(GetI64(blob, 72));
  std::memcpy(&info.meta.min_scattering_sec, &bits, sizeof(bits));
  bits = static_cast<uint64_t>(GetI64(blob, 80));
  std::memcpy(&info.meta.max_scattering_sec, &bits, sizeof(bits));
  const int64_t secondary_count = GetI64(blob, 88);
  if (secondary_count < 0 || info.meta.unit_count < 0 ||
      !(info.meta.recording_rate > 0) ||
      len != static_cast<int64_t>(kHeaderFixedBytes) + secondary_count * 16) {
    return Status(ErrorCode::kInvalidArgument, "corrupt header block");
  }
  for (int64_t i = 0; i < secondary_count; ++i) {
    const size_t offset = kHeaderFixedBytes + static_cast<size_t>(i) * 16;
    info.sb_extents.emplace_back(GetI64(blob, offset), GetI64(blob, offset + 8));
  }
  return info;
}

}  // namespace vafs
