#include "src/layout/allocator.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace vafs {

ConstrainedAllocator::ConstrainedAllocator(const DiskModel* model)
    : model_(model),
      total_sectors_(model->params().TotalSectors()),
      free_sectors_(total_sectors_) {
  free_[0] = total_sectors_;
}

Result<Extent> ConstrainedAllocator::Allocate(int64_t sectors, int64_t hint_sector) {
  if (sectors <= 0) {
    return Status(ErrorCode::kInvalidArgument, "allocation of non-positive size");
  }
  std::optional<Extent> found =
      FindInWindow(sectors, hint_sector, total_sectors_, /*forward=*/true, hint_sector);
  if (!found.has_value() && hint_sector > 0) {
    found = FindInWindow(sectors, 0, hint_sector, /*forward=*/true, 0);
  }
  if (!found.has_value()) {
    return Status(ErrorCode::kNoSpace,
                  "no free extent of " + std::to_string(sectors) + " sectors");
  }
  if (Status status = AllocateExact(*found); !status.ok()) {
    return status;
  }
  return *found;
}

Result<Extent> ConstrainedAllocator::AllocateInLargest(int64_t sectors) {
  if (sectors <= 0) {
    return Status(ErrorCode::kInvalidArgument, "allocation of non-positive size");
  }
  const std::map<int64_t, int64_t>::const_iterator largest = std::max_element(
      free_.begin(), free_.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  if (largest == free_.end() || largest->second < sectors) {
    return Status(ErrorCode::kNoSpace,
                  "no free extent of " + std::to_string(sectors) + " sectors");
  }
  const Extent extent{largest->first, sectors};
  if (Status status = AllocateExact(extent); !status.ok()) {
    return status;
  }
  return extent;
}

Result<Extent> ConstrainedAllocator::AllocateNear(int64_t previous_end_sector, int64_t sectors,
                                                  int64_t max_distance_cylinders,
                                                  int64_t min_distance_cylinders,
                                                  PlacementPreference preference) {
  if (sectors <= 0 || previous_end_sector <= 0 || previous_end_sector > total_sectors_) {
    return Status(ErrorCode::kInvalidArgument, "bad constrained allocation request");
  }
  if (max_distance_cylinders < min_distance_cylinders) {
    return Status(ErrorCode::kInvalidArgument, "empty cylinder distance window");
  }
  const int64_t per_cylinder = model_->params().SectorsPerCylinder();
  const int64_t anchor_cylinder = (previous_end_sector - 1) / per_cylinder;

  // Feasible start sectors: blocks whose *starting* cylinder is within the
  // distance window. (The block may spill into the next cylinder; the gap
  // that matters is the seek to the block's start.)
  const int64_t lo_cyl = anchor_cylinder - max_distance_cylinders;
  const int64_t hi_cyl = anchor_cylinder + max_distance_cylinders;
  const int64_t window_begin = std::max<int64_t>(0, lo_cyl * per_cylinder);
  const int64_t window_end = std::min(total_sectors_, (hi_cyl + 1) * per_cylinder);

  auto satisfies_min = [&](const Extent& extent) {
    if (min_distance_cylinders <= 0) {
      return true;
    }
    const int64_t cyl = extent.start_sector / per_cylinder;
    const int64_t distance = cyl >= anchor_cylinder ? cyl - anchor_cylinder : anchor_cylinder - cyl;
    return distance >= min_distance_cylinders;
  };

  std::optional<Extent> found;
  // Repair chains want maximal progress: try the far edge of the window
  // first, then fall through to the nearest-fit policy.
  if (preference == PlacementPreference::kFarthestForward) {
    std::optional<Extent> candidate =
        FindInWindow(sectors, previous_end_sector, window_end, /*forward=*/false, window_end);
    if (candidate.has_value() && satisfies_min(*candidate)) {
      if (Status status = AllocateExact(*candidate); !status.ok()) {
        return status;
      }
      return *candidate;
    }
  } else if (preference == PlacementPreference::kFarthestBackward) {
    std::optional<Extent> candidate =
        FindInWindow(sectors, window_begin, previous_end_sector, /*forward=*/true, window_begin);
    if (candidate.has_value() && satisfies_min(*candidate)) {
      if (Status status = AllocateExact(*candidate); !status.ok()) {
        return status;
      }
      return *candidate;
    }
  }
  // Forward sweep first: allocating ahead of the arm's travel direction
  // keeps strands marching across the disk instead of ping-ponging.
  int64_t cursor = previous_end_sector;
  while (true) {
    std::optional<Extent> candidate =
        FindInWindow(sectors, window_begin, window_end, /*forward=*/true, cursor);
    if (!candidate.has_value()) {
      break;
    }
    if (satisfies_min(*candidate)) {
      found = candidate;
      break;
    }
    cursor = candidate->start_sector + 1;
  }
  if (!found.has_value()) {
    cursor = previous_end_sector;
    while (true) {
      std::optional<Extent> candidate =
          FindInWindow(sectors, window_begin, window_end, /*forward=*/false, cursor);
      if (!candidate.has_value()) {
        break;
      }
      if (satisfies_min(*candidate)) {
        found = candidate;
        break;
      }
      cursor = candidate->start_sector + sectors - 1;
      if (cursor <= window_begin) {
        break;
      }
    }
  }
  if (!found.has_value()) {
    return Status(ErrorCode::kNoSpace,
                  "no free extent of " + std::to_string(sectors) + " sectors within " +
                      std::to_string(max_distance_cylinders) + " cylinders");
  }
  if (Status status = AllocateExact(*found); !status.ok()) {
    return status;
  }
  return *found;
}

std::optional<Extent> ConstrainedAllocator::FindInWindow(int64_t sectors, int64_t window_begin,
                                                         int64_t window_end, bool forward,
                                                         int64_t from) const {
  if (window_begin >= window_end) {
    return std::nullopt;
  }
  from = std::clamp(from, window_begin, window_end);
  if (forward) {
    // First free extent at or after `from` (also consider the extent
    // containing `from`).
    auto it = free_.upper_bound(from);
    if (it != free_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second > from) {
        const int64_t start = std::max(prev->first, from);
        const int64_t available = prev->first + prev->second - start;
        if (start + sectors <= window_end && available >= sectors) {
          return Extent{start, sectors};
        }
      }
    }
    for (; it != free_.end() && it->first + sectors <= window_end; ++it) {
      if (it->second >= sectors && it->first >= window_begin) {
        return Extent{it->first, sectors};
      }
    }
    return std::nullopt;
  }
  // Backward: last free run that can hold `sectors` fully before `from`
  // and within the window. Prefer the placement closest to `from`.
  auto it = free_.upper_bound(from);
  while (it != free_.begin()) {
    --it;
    const int64_t run_start = std::max(it->first, window_begin);
    const int64_t run_end = std::min({it->first + it->second, from, window_end});
    if (run_end - run_start >= sectors) {
      return Extent{run_end - sectors, sectors};
    }
    if (it->first < window_begin) {
      break;
    }
  }
  return std::nullopt;
}

bool ConstrainedAllocator::IsFree(const Extent& extent) const {
  auto it = free_.upper_bound(extent.start_sector);
  if (it == free_.begin()) {
    return false;
  }
  --it;
  return it->first <= extent.start_sector && it->first + it->second >= extent.end_sector();
}

int64_t ConstrainedAllocator::LargestFreeExtent() const {
  int64_t largest = 0;
  for (const auto& [start, length] : free_) {
    largest = std::max(largest, length);
  }
  return largest;
}

Status ConstrainedAllocator::AllocateExact(const Extent& extent) {
  if (extent.sectors <= 0 || extent.start_sector < 0 || extent.end_sector() > total_sectors_) {
    return Status(ErrorCode::kInvalidArgument, "extent outside disk");
  }
  auto it = free_.upper_bound(extent.start_sector);
  if (it == free_.begin()) {
    return Status(ErrorCode::kNoSpace, "extent not free");
  }
  --it;
  if (it->first > extent.start_sector || it->first + it->second < extent.end_sector()) {
    return Status(ErrorCode::kNoSpace, "extent not free");
  }
  Carve(it->first, it->second, extent);
  free_sectors_ -= extent.sectors;
  return Status::Ok();
}

void ConstrainedAllocator::Carve(int64_t free_start, int64_t free_length, const Extent& extent) {
  free_.erase(free_start);
  if (extent.start_sector > free_start) {
    free_[free_start] = extent.start_sector - free_start;
  }
  const int64_t tail_start = extent.end_sector();
  const int64_t tail_length = free_start + free_length - tail_start;
  if (tail_length > 0) {
    free_[tail_start] = tail_length;
  }
}

Status ConstrainedAllocator::Free(const Extent& extent) {
  if (extent.sectors <= 0 || extent.start_sector < 0 || extent.end_sector() > total_sectors_) {
    return Status(ErrorCode::kInvalidArgument, "extent outside disk");
  }
  // Reject double frees: the extent must not overlap any free run.
  auto next = free_.upper_bound(extent.start_sector);
  if (next != free_.end() && next->first < extent.end_sector()) {
    return Status(ErrorCode::kFailedPrecondition, "double free");
  }
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second > extent.start_sector) {
      return Status(ErrorCode::kFailedPrecondition, "double free");
    }
  }

  int64_t start = extent.start_sector;
  int64_t length = extent.sectors;
  // Merge with the preceding run if adjacent.
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == start) {
      start = prev->first;
      length += prev->second;
      free_.erase(prev);
    }
  }
  // Merge with the following run if adjacent.
  if (next != free_.end() && next->first == extent.end_sector()) {
    length += next->second;
    free_.erase(next);
  }
  free_[start] = length;
  free_sectors_ += extent.sectors;
  return Status::Ok();
}

}  // namespace vafs
