// Three-level strand index (paper Section 3.5, Figures 5-6).
//
// A strand's media blocks are addressed through:
//   Header Block (HB): recording rate, frame count, pointers to all SBs;
//   Secondary Blocks (SB): entries [startBlock, blockCount, sector,
//     sectorCount] locating Primary Blocks;
//   Primary Blocks (PB): entries [sector, sectorCount] locating Media
//     Blocks (MB) on disk.
// The structure gives large strand sizes plus random and concurrent access
// (any media block is reachable in HB -> SB -> PB -> MB = 3 index hops).
//
// Silence elimination (Section 4) stores no data for silent audio blocks;
// a NULL pointer in the primary index — encoded here as sector == -1 —
// acts as the explicit delay holder for the duration of a block.

#ifndef VAFS_SRC_LAYOUT_STRAND_INDEX_H_
#define VAFS_SRC_LAYOUT_STRAND_INDEX_H_

#include <cstdint>
#include <vector>

#include "src/util/result.h"

namespace vafs {

// Sentinel disk position for an eliminated-silence block.
inline constexpr int64_t kSilenceSector = -1;

// One Primary Block entry: where a media block lives (Fig. 6).
struct PrimaryEntry {
  int64_t sector = kSilenceSector;  // position of the MB on disk
  int64_t sector_count = 0;         // length of the MB in sectors

  bool IsSilence() const { return sector == kSilenceSector; }
  friend bool operator==(const PrimaryEntry& a, const PrimaryEntry& b) = default;
};

// Fan-out configuration: how many entries fit in each index block. The
// defaults correspond to 4 KB index blocks holding 16-byte PB entries and
// 32-byte SB entries.
struct IndexFanout {
  int64_t entries_per_primary = 256;
  int64_t primaries_per_secondary = 128;
};

class StrandIndex {
 public:
  explicit StrandIndex(IndexFanout fanout = IndexFanout());

  const IndexFanout& fanout() const { return fanout_; }

  // Appends the next media block's location (strands are append-only:
  // immutability keeps garbage collection simple).
  void Append(const PrimaryEntry& entry);

  // Location of media block `block_number`.
  Result<PrimaryEntry> Lookup(int64_t block_number) const;

  int64_t block_count() const { return block_count_; }

  // Number of media blocks that are eliminated silence.
  int64_t silence_block_count() const { return silence_blocks_; }

  // Structural sizes (Fig. 5): how many PBs / SBs the strand needs.
  int64_t primary_block_count() const;
  int64_t secondary_block_count() const;

  // Index blocks touched by a cold random lookup (HB + SB + PB).
  static constexpr int64_t kColdLookupHops = 3;

  // Iterates entries in block order.
  const std::vector<PrimaryEntry>& entries() const { return entries_; }

  // --- On-disk form ---------------------------------------------------------
  //
  // Serialization lays the three levels into self-contained byte blobs so
  // the storage manager can place each index block on disk. Offsets use
  // little-endian int64.

  // Serialized Primary Block `pb_number` (entries only).
  std::vector<uint8_t> SerializePrimaryBlock(int64_t pb_number) const;

  // Serialized Secondary Block `sb_number`, given the disk extents at
  // which the PBs it covers were placed: pb_extents[i] = {sector,
  // sector_count} of PB i (absolute PB numbering).
  std::vector<uint8_t> SerializeSecondaryBlock(
      int64_t sb_number, const std::vector<std::pair<int64_t, int64_t>>& pb_extents) const;

  // Signature of a serialized Header Block: the first 8 bytes on disk read
  // "VAFSHB02". Because every HB starts on a sector boundary, the fsck
  // scavenger can find orphaned strands by scanning populated sectors for
  // this magic and validating the embedded CRC — no catalog required.
  static constexpr uint64_t kHeaderBlockMagic = 0x3230'4248'5346'4156ULL;

  // Media metadata carried inside the Header Block, enough to reconstruct
  // a full StrandInfo without the catalog. `medium` is 0 for video, 1 for
  // audio (the Medium enum lives a layer above this one).
  struct HeaderMeta {
    int64_t id = 0;
    int64_t medium = 0;
    double recording_rate = 0.0;
    int64_t bits_per_unit = 0;
    int64_t granularity = 1;
    int64_t unit_count = 0;
    double min_scattering_sec = 0.0;
    double max_scattering_sec = 0.0;
  };

  // Serialized Header Block v2: magic, CRC-64 (over everything after the
  // length field), logical length, HeaderMeta, then the SB placements.
  std::vector<uint8_t> SerializeHeaderBlock(
      const HeaderMeta& meta,
      const std::vector<std::pair<int64_t, int64_t>>& sb_extents) const;

  // Rebuilds an index from the concatenation of its serialized PBs, in
  // order (used by recovery; SB/HB carry only placement).
  static Result<StrandIndex> FromSerializedPrimaries(
      IndexFanout fanout, const std::vector<std::vector<uint8_t>>& primaries);

  // --- Recovery parsing -------------------------------------------------------

  // One Secondary Block entry as stored on disk (Fig. 6).
  struct SecondaryEntry {
    int64_t start_block = 0;
    int64_t block_count = 0;
    int64_t sector = 0;
    int64_t sector_count = 0;
  };

  // Parses a Secondary Block read back from disk. Trailing sector padding
  // (all-zero entries, recognizable by block_count == 0) is ignored.
  static Result<std::vector<SecondaryEntry>> ParseSecondaryBlock(
      const std::vector<uint8_t>& blob);

  // The Header Block's decoded contents.
  struct HeaderInfo {
    HeaderMeta meta;
    // SB placements: (sector, sector_count).
    std::vector<std::pair<int64_t, int64_t>> sb_extents;
  };

  // Parses a Header Block read back from disk (trailing sector padding is
  // tolerated). Fails unless the magic and CRC both check out, so a torn
  // or shredded HB is rejected rather than half-trusted.
  static Result<HeaderInfo> ParseHeaderBlock(const std::vector<uint8_t>& blob);

 private:
  IndexFanout fanout_;
  std::vector<PrimaryEntry> entries_;
  int64_t block_count_ = 0;
  int64_t silence_blocks_ = 0;
};

}  // namespace vafs

#endif  // VAFS_SRC_LAYOUT_STRAND_INDEX_H_
