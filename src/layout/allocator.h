// Constrained block allocation (paper Section 3).
//
// Blocks of a media strand must be placed so that the positioning gap
// between consecutive blocks never exceeds the strand's scattering bound.
// Random allocation gives no such guarantee; contiguous allocation gives a
// zero gap but fragments and forces bulk copying on edits. The paper's
// answer is *constrained* allocation: each next block may land anywhere
// within a bounded cylinder distance of its predecessor, and the gaps left
// between media blocks remain available — notably for conventional text
// files, letting one server integrate both roles.
//
// The allocator manages free sector extents on one disk. Media strands
// allocate with a distance window relative to the previous block; text and
// index blocks allocate unconstrained (first fit).

#ifndef VAFS_SRC_LAYOUT_ALLOCATOR_H_
#define VAFS_SRC_LAYOUT_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/disk/disk_model.h"
#include "src/util/result.h"

namespace vafs {

// How AllocateNear chooses among feasible extents. Nearest keeps strands
// compact; the farthest variants are used by scattering repair, which must
// make maximal progress toward a distant target with every placed block.
enum class PlacementPreference {
  kNearest,
  kFarthestForward,   // as close to the forward window edge as possible
  kFarthestBackward,  // as close to the backward window edge as possible
};

// A contiguous run of sectors.
struct Extent {
  int64_t start_sector = 0;
  int64_t sectors = 0;

  int64_t end_sector() const { return start_sector + sectors; }
  friend bool operator==(const Extent& a, const Extent& b) = default;
};

class ConstrainedAllocator {
 public:
  explicit ConstrainedAllocator(const DiskModel* model);

  // --- Unconstrained allocation (text files, index blocks) -----------------

  // First free extent of `sectors`, optionally at/after `hint_sector`.
  Result<Extent> Allocate(int64_t sectors, int64_t hint_sector = 0);

  // Allocates at the start of the largest free run. Used for the first
  // block of a new strand: the strand's whole constrained chain grows
  // from this spot, so it should begin where the most contiguous room is.
  Result<Extent> AllocateInLargest(int64_t sectors);

  // --- Constrained allocation (media blocks) --------------------------------

  // Allocates `sectors` such that the cylinder distance from the cylinder
  // holding `previous_end_sector - 1` is within [min_distance, max_distance].
  // Preference order: nearest feasible extent beyond the previous block
  // (forward sweep), then nearest feasible extent before it. min_distance
  // is almost always 0; tests use it to force specific layouts.
  Result<Extent> AllocateNear(int64_t previous_end_sector, int64_t sectors,
                              int64_t max_distance_cylinders,
                              int64_t min_distance_cylinders = 0,
                              PlacementPreference preference = PlacementPreference::kNearest);

  // Allocates a specific extent if free (used by block redistribution
  // during scattering repair, which computes target positions itself).
  Status AllocateExact(const Extent& extent);

  // Returns an extent to the free pool; merges with neighbours.
  Status Free(const Extent& extent);

  // --- Introspection --------------------------------------------------------

  int64_t total_sectors() const { return total_sectors_; }
  int64_t free_sectors() const { return free_sectors_; }
  double Occupancy() const {
    return 1.0 - static_cast<double>(free_sectors_) / static_cast<double>(total_sectors_);
  }
  // Number of free extents (fragmentation indicator).
  int64_t FreeExtentCount() const { return static_cast<int64_t>(free_.size()); }

  // True if every sector of `extent` is currently free.
  bool IsFree(const Extent& extent) const;

  // Largest free extent available anywhere.
  int64_t LargestFreeExtent() const;

  // Every free extent, in sector order. The fsck claim-map check uses the
  // complement of this as "what the allocator believes is allocated".
  std::vector<Extent> FreeExtents() const {
    std::vector<Extent> extents;
    extents.reserve(free_.size());
    for (const auto& [start, length] : free_) {
      extents.push_back(Extent{start, length});
    }
    return extents;
  }

 private:
  // Finds a free extent of `sectors` inside [window_begin, window_end),
  // scanning from `from` in the given direction. Returns nullopt if none.
  std::optional<Extent> FindInWindow(int64_t sectors, int64_t window_begin, int64_t window_end,
                                     bool forward, int64_t from) const;

  void Carve(int64_t free_start, int64_t free_length, const Extent& extent);

  const DiskModel* model_;
  int64_t total_sectors_;
  int64_t free_sectors_;
  // Free extents: start sector -> length. Invariant: non-overlapping,
  // non-adjacent (adjacent extents are merged on Free).
  std::map<int64_t, int64_t> free_;
};

}  // namespace vafs

#endif  // VAFS_SRC_LAYOUT_ALLOCATOR_H_
