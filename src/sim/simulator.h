// Discrete-event simulation engine.
//
// vaFS timing behaviour (disk transfers, playback deadlines, service
// rounds) is evaluated under a simulated clock rather than wall time, so
// that continuity properties are deterministic and testable. The engine is
// a classic calendar: events are (time, sequence, callback) triples; ties
// in time are broken by insertion order so runs are exactly reproducible.

#ifndef VAFS_SRC_SIM_SIMULATOR_H_
#define VAFS_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/util/time.h"

namespace vafs {

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;

  // Simulators own pending callbacks; moving one around would invalidate
  // `this` captured by components, so forbid copies and moves.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulated time in microseconds.
  SimTime Now() const { return now_; }

  // Schedules `callback` to run at absolute simulated time `at`.
  // Scheduling in the past is clamped to Now(): the event runs next.
  void ScheduleAt(SimTime at, Callback callback);

  // Schedules `callback` to run `delay` microseconds from now.
  void ScheduleAfter(SimDuration delay, Callback callback);

  // Runs the earliest pending event. Returns false if none are pending.
  bool Step();

  // Runs events until the queue is empty.
  void Run();

  // Runs events with time <= deadline; leaves later events pending and
  // advances the clock to `deadline`.
  void RunUntil(SimTime deadline);

  // Drops every pending event without running it. Crash recovery uses this:
  // callbacks scheduled by a scheduler that died with the crash capture its
  // `this` and must never fire against the rebuilt one. The clock and the
  // executed-event counter are preserved.
  void Clear() { queue_ = {}; }

  // Number of events executed so far (diagnostic).
  int64_t events_executed() const { return events_executed_; }

  // Number of events still pending.
  size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    int64_t sequence;
    Callback callback;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.sequence > b.sequence;
    }
  };

  SimTime now_ = 0;
  int64_t next_sequence_ = 0;
  int64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

}  // namespace vafs

#endif  // VAFS_SRC_SIM_SIMULATOR_H_
