#include "src/sim/simulator.h"

#include <utility>

namespace vafs {

void Simulator::ScheduleAt(SimTime at, Callback callback) {
  if (at < now_) {
    at = now_;
  }
  queue_.push(Event{at, next_sequence_++, std::move(callback)});
}

void Simulator::ScheduleAfter(SimDuration delay, Callback callback) {
  ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(callback));
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  // Move the callback out before popping: running it may schedule new
  // events and reallocate the underlying heap.
  Event event = queue_.top();
  queue_.pop();
  now_ = event.time;
  ++events_executed_;
  event.callback();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace vafs
