#include "src/sim/workload.h"

#include <algorithm>
#include <cmath>

namespace vafs {
namespace sim {

ZipfPopularity::ZipfPopularity(int64_t titles, double exponent) {
  const int64_t count = std::max<int64_t>(titles, 1);
  cdf_.resize(static_cast<size_t>(count));
  double total = 0.0;
  for (int64_t t = 0; t < count; ++t) {
    total += 1.0 / std::pow(static_cast<double>(t + 1), exponent);
    cdf_[static_cast<size_t>(t)] = total;
  }
  for (double& value : cdf_) {
    value /= total;
  }
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

int64_t ZipfPopularity::Sample(Prng* prng) const {
  const double u = prng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int64_t>(it - cdf_.begin());
}

double ZipfPopularity::Probability(int64_t title) const {
  if (title < 0 || title >= titles()) {
    return 0.0;
  }
  const double upper = cdf_[static_cast<size_t>(title)];
  const double lower = title == 0 ? 0.0 : cdf_[static_cast<size_t>(title - 1)];
  return upper - lower;
}

WorkloadEngine::WorkloadEngine(WorkloadOptions options)
    : options_(options), popularity_(options.titles, options.zipf_exponent) {}

std::vector<WorkloadArrival> WorkloadEngine::Generate() const {
  std::vector<WorkloadArrival> arrivals;
  Prng prng(options_.seed);
  const double base_rate = std::max(options_.arrival_rate_per_sec, 1e-9);
  const double flash_mult = std::max(options_.flash_rate_multiplier, 1.0);
  const double flash_end = options_.flash_start_sec + options_.flash_duration_sec;
  // Thinning: draw exponential gaps at the peak (flash) rate everywhere,
  // then keep an off-flash arrival with probability base/peak. One stream
  // of draws covers both regimes, so moving or widening the flash window
  // leaves the trace before it untouched.
  const double peak_rate = base_rate * flash_mult;
  double now = 0.0;
  while (true) {
    const double u = std::max(prng.NextDouble(), 1e-12);
    now += -std::log(u) / peak_rate;
    if (now >= options_.duration_sec) {
      break;
    }
    const bool in_flash = options_.flash_duration_sec > 0.0 && now >= options_.flash_start_sec &&
                          now < flash_end;
    const double keep = prng.NextDouble();
    if (!in_flash && keep >= base_rate / peak_rate) {
      continue;  // thinned: this draw only exists at the flash rate
    }
    WorkloadArrival arrival;
    arrival.time_sec = now;
    arrival.flash = in_flash;
    if (in_flash && prng.NextDouble() < options_.flash_title_bias) {
      arrival.title = std::clamp<int64_t>(options_.flash_title, 0, popularity_.titles() - 1);
    } else {
      arrival.title = popularity_.Sample(&prng);
    }
    arrivals.push_back(arrival);
  }
  return arrivals;
}

std::vector<WorkloadArrival> WorkloadEngine::GenerateCount(int64_t viewers) const {
  std::vector<WorkloadArrival> arrivals;
  if (viewers <= 0) {
    return arrivals;
  }
  arrivals.reserve(static_cast<size_t>(viewers));
  Prng prng(options_.seed);
  const double flash_end = options_.flash_start_sec + options_.flash_duration_sec;
  for (int64_t i = 0; i < viewers; ++i) {
    WorkloadArrival arrival;
    // Deterministic stride over the window (midpoint rule): the population
    // is exact and the spacing independent of the seed.
    arrival.time_sec = (static_cast<double>(i) + 0.5) / static_cast<double>(viewers) *
                       options_.duration_sec;
    arrival.flash = options_.flash_duration_sec > 0.0 &&
                    arrival.time_sec >= options_.flash_start_sec && arrival.time_sec < flash_end;
    if (arrival.flash && prng.NextDouble() < options_.flash_title_bias) {
      arrival.title = std::clamp<int64_t>(options_.flash_title, 0, popularity_.titles() - 1);
    } else {
      arrival.title = popularity_.Sample(&prng);
    }
    arrivals.push_back(arrival);
  }
  return arrivals;
}

std::vector<WorkloadOptions::NodeFailure> WorkloadEngine::FailureSchedule() const {
  std::vector<WorkloadOptions::NodeFailure> schedule = options_.node_failures;
  std::sort(schedule.begin(), schedule.end(),
            [](const WorkloadOptions::NodeFailure& a, const WorkloadOptions::NodeFailure& b) {
              return a.time_sec != b.time_sec ? a.time_sec < b.time_sec : a.node < b.node;
            });
  return schedule;
}

}  // namespace sim
}  // namespace vafs
