// Deterministic viewer-arrival workloads for session and admission studies.
//
// Video-on-demand load is not uniform: a few titles draw most of the
// audience (Zipf popularity), arrivals cluster in time (Poisson at a base
// rate), and a release or an event can point a flash crowd at one title
// for a bounded burst. The stream-merging session layer
// (src/msm/session_manager.h) exists precisely because of that shape —
// batching and patching only pay off when many viewers want the same title
// close together — so its benchmarks need a workload engine that produces
// it on demand, reproducibly.
//
// Everything is driven by one Prng seed: the same WorkloadOptions always
// generate the same arrival trace, block by block, so a benchmark can
// replay the identical crowd against different admission policies and a
// regression can assert exact admission sequences.

#ifndef VAFS_SRC_SIM_WORKLOAD_H_
#define VAFS_SRC_SIM_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "src/util/prng.h"

namespace vafs {
namespace sim {

// Zipf(s) popularity over `titles` items: title t (0-based) is drawn with
// probability proportional to 1 / (t + 1)^s. Sampling inverts the CDF, so
// one Prng draw yields one title and the sequence is seed-stable.
class ZipfPopularity {
 public:
  ZipfPopularity(int64_t titles, double exponent);

  int64_t Sample(Prng* prng) const;
  // P(title), for tests asserting the realized skew.
  double Probability(int64_t title) const;
  int64_t titles() const { return static_cast<int64_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;  // cdf_[t] = P(title <= t)
};

struct WorkloadOptions {
  int64_t titles = 20;
  double zipf_exponent = 1.0;  // 0 = uniform; ~1 = classic VoD skew
  double duration_sec = 60.0;  // arrival window; nothing arrives past it
  double arrival_rate_per_sec = 1.0;  // Poisson base rate

  // Flash crowd: for [flash_start_sec, flash_start_sec + flash_duration_sec)
  // the arrival rate is multiplied by flash_rate_multiplier and each
  // arrival is redirected to `flash_title` with probability
  // flash_title_bias (otherwise it samples the Zipf as usual). A
  // multiplier of 1 with bias 0 disables the flash entirely.
  double flash_start_sec = 0.0;
  double flash_duration_sec = 0.0;
  double flash_rate_multiplier = 1.0;
  double flash_title_bias = 0.0;
  int64_t flash_title = 0;

  uint64_t seed = 1;

  // Node-failure schedule for cluster runs (src/cluster/): each entry
  // kills one storage node at a fixed time; a non-negative restart_after
  // powers it back up that many seconds later (its journal replays and the
  // coordinator reconciles its catalog before readmitting it). The
  // schedule is part of the options — not sampled from the Prng — so the
  // same seed with and without failures produces the identical arrival
  // trace, and the failure instant itself is reproducible to the round.
  struct NodeFailure {
    double time_sec = 0.0;
    int64_t node = 0;
    double restart_after_sec = -1.0;  // < 0: the node stays dead
  };
  std::vector<NodeFailure> node_failures;
};

struct WorkloadArrival {
  double time_sec = 0.0;
  int64_t title = 0;
  bool flash = false;  // arrived inside the flash-crowd burst
};

// Generates the full arrival trace for one run, sorted by time. Poisson
// arrivals are produced by exponential inter-arrival gaps at the peak rate
// and thinned outside the flash window, so a sweep that moves or widens
// the flash leaves the trace before the window untouched.
class WorkloadEngine {
 public:
  explicit WorkloadEngine(WorkloadOptions options);

  std::vector<WorkloadArrival> Generate() const;
  // Exactly `viewers` arrivals, evenly spread over the duration window,
  // titles Zipf-sampled (flash redirect still applies inside the window).
  // Scale benches need a fixed population — a Poisson trace whose size
  // varies with the seed would make "20k streams" a lottery.
  std::vector<WorkloadArrival> GenerateCount(int64_t viewers) const;
  // The failure schedule sorted by time (ties by node id), for drivers that
  // interleave kills with the arrival trace.
  std::vector<WorkloadOptions::NodeFailure> FailureSchedule() const;
  const WorkloadOptions& options() const { return options_; }

 private:
  WorkloadOptions options_;
  ZipfPopularity popularity_;
};

}  // namespace sim
}  // namespace vafs

#endif  // VAFS_SRC_SIM_WORKLOAD_H_
