#include "src/msm/scattering_repair.h"

#include <string>
#include <vector>

namespace vafs {

namespace {

// Last non-silence entry at or before `block` (silence blocks occupy no
// disk position, so the seam anchors on real data). Returns false if the
// whole prefix is silence.
bool AnchorEntry(const Strand& strand, int64_t block, PrimaryEntry* out) {
  for (int64_t b = block; b >= 0; --b) {
    Result<PrimaryEntry> entry = strand.index().Lookup(b);
    if (!entry.ok()) {
      return false;
    }
    if (!entry->IsSilence()) {
      *out = *entry;
      return true;
    }
  }
  return false;
}

}  // namespace

Result<double> SeamGapSec(StrandStore* store, StrandId preceding, int64_t preceding_last_block,
                          StrandId following, int64_t following_first_block) {
  Result<const Strand*> strand_a = store->Get(preceding);
  if (!strand_a.ok()) {
    return strand_a.status();
  }
  Result<const Strand*> strand_b = store->Get(following);
  if (!strand_b.ok()) {
    return strand_b.status();
  }
  PrimaryEntry from;
  if (!AnchorEntry(**strand_a, preceding_last_block, &from)) {
    return 0.0;  // all silence before the seam: nothing to hop from
  }
  Result<PrimaryEntry> to = (*strand_b)->index().Lookup(following_first_block);
  if (!to.ok()) {
    return to.status();
  }
  if (to->IsSilence()) {
    return 0.0;
  }
  return UsecToSeconds(store->model().AccessGap(from.sector + from.sector_count - 1, to->sector));
}

Result<RepairOutcome> RepairSeam(StrandStore* store, StrandId preceding,
                                 int64_t preceding_last_block, StrandId following,
                                 int64_t following_first_block,
                                 int64_t following_blocks_available) {
  Result<const Strand*> strand_a_result = store->Get(preceding);
  if (!strand_a_result.ok()) {
    return strand_a_result.status();
  }
  Result<const Strand*> strand_b_result = store->Get(following);
  if (!strand_b_result.ok()) {
    return strand_b_result.status();
  }
  const Strand& strand_a = **strand_a_result;
  const Strand& strand_b = **strand_b_result;
  const double bound_sec = strand_b.info().max_scattering_sec;
  const DiskModel& model = store->model();

  RepairOutcome outcome;

  PrimaryEntry seam_anchor;
  if (!AnchorEntry(strand_a, preceding_last_block, &seam_anchor)) {
    outcome.already_continuous = true;
    return outcome;
  }
  const int64_t seam_anchor_end = seam_anchor.sector + seam_anchor.sector_count;

  auto gap_sec = [&](int64_t from_end_sector, const PrimaryEntry& to) {
    return UsecToSeconds(model.AccessGap(from_end_sector - 1, to.sector));
  };

  // Fast path: the seam already satisfies the bound.
  {
    Result<PrimaryEntry> first = strand_b.index().Lookup(following_first_block);
    if (!first.ok()) {
      return first.status();
    }
    if (first->IsSilence() || gap_sec(seam_anchor_end, *first) <= bound_sec) {
      outcome.already_continuous = true;
      return outcome;
    }
  }

  // Copy chain: each copied block is placed within the scattering window
  // of the previous position; the chain ends as soon as the next block's
  // *original* placement is itself within reach.
  Result<std::unique_ptr<StrandWriter>> writer_result = store->CreateStrand(
      strand_b.info().Profile(),
      StrandPlacement{strand_b.info().granularity, strand_b.info().min_scattering_sec,
                      strand_b.info().max_scattering_sec});
  if (!writer_result.ok()) {
    return writer_result.status();
  }
  StrandWriter& writer = **writer_result;
  if (Status status = writer.SetAnchor(seam_anchor_end); !status.ok()) {
    return status;
  }

  int64_t copied_units = 0;
  int64_t chain_length = 0;

  // A device fault mid-chain does not forfeit the copied prefix: finish it
  // into a real strand and hand the caller a resumable outcome. A chain of
  // only silence blocks is abandoned instead — recopying silence is free.
  auto interrupt = [&](const Status& fault) -> Result<RepairOutcome> {
    outcome.interrupted = true;
    outcome.fault = fault;
    if (chain_length > 0 && copied_units > 0) {
      Result<StrandId> copy_id = writer.Finish(copied_units);
      if (!copy_id.ok()) {
        return copy_id.status();
      }
      outcome.copy_strand = *copy_id;
      outcome.blocks_copied = chain_length;
    }
    return outcome;
  };
  auto is_device_fault = [](const Status& status) {
    return status.code() == ErrorCode::kIoError || status.code() == ErrorCode::kBadSector;
  };

  while (chain_length < following_blocks_available) {
    const int64_t block = following_first_block + chain_length;
    Result<PrimaryEntry> entry = strand_b.index().Lookup(block);
    if (!entry.ok()) {
      return entry.status();
    }
    if (!entry->IsSilence() &&
        gap_sec(writer.previous_end_sector(), *entry) <= bound_sec) {
      break;  // original placement reachable: done
    }
    if (entry->IsSilence()) {
      // Silence stores nothing; carry it into the copy so playback content
      // is preserved, at zero disk cost.
      if (Status status = writer.AppendSilence(); !status.ok()) {
        return status;
      }
    } else {
      // Each copy must make maximal progress toward the block's original
      // position, or the chain would idle near the seam forever.
      writer.SetPlacementPreference(entry->sector >= writer.previous_end_sector()
                                        ? PlacementPreference::kFarthestForward
                                        : PlacementPreference::kFarthestBackward);
      std::vector<uint8_t> payload;
      Result<SimDuration> read = store->disk().Read(entry->sector, entry->sector_count, &payload);
      if (!read.ok()) {
        if (is_device_fault(read.status())) {
          outcome.copy_time += store->disk().last_fault_service();
          return interrupt(read.status());
        }
        return read.status();
      }
      outcome.copy_time += *read;
      if (payload.empty()) {
        // Timing-only disks return no data; keep the copy chain's sizes
        // faithful with a zero payload of the right length.
        payload.assign(static_cast<size_t>(entry->sector_count *
                                           store->disk().bytes_per_sector()),
                       0);
      }
      Result<SimDuration> write = writer.AppendBlock(payload);
      if (!write.ok()) {
        if (is_device_fault(write.status())) {
          outcome.copy_time += store->disk().last_fault_service();
          return interrupt(write.status());
        }
        return write.status();
      }
      outcome.copy_time += *write;
    }
    copied_units += strand_b.UnitsInBlock(block);
    ++chain_length;
  }

  if (chain_length == 0) {
    // Cannot happen: the fast path would have returned. Defensive only.
    return Status(ErrorCode::kInternal, "repair chain empty after failed fast path");
  }
  Result<StrandId> copy_id = writer.Finish(copied_units);
  if (!copy_id.ok()) {
    return copy_id.status();
  }
  outcome.copy_strand = *copy_id;
  outcome.blocks_copied = chain_length;
  return outcome;
}

Result<BlockRelocationOutcome> RelocateBlocks(StrandStore* store, StrandId strand_id,
                                              int64_t first_block, int64_t block_count) {
  if (block_count <= 0) {
    return Status(ErrorCode::kInvalidArgument, "block_count must be positive");
  }
  Result<const Strand*> strand_result = store->Get(strand_id);
  if (!strand_result.ok()) {
    return strand_result.status();
  }
  const Strand& strand = **strand_result;
  Result<std::unique_ptr<StrandWriter>> writer_result = store->CreateStrand(
      strand.info().Profile(),
      StrandPlacement{strand.info().granularity, strand.info().min_scattering_sec,
                      strand.info().max_scattering_sec});
  if (!writer_result.ok()) {
    return writer_result.status();
  }
  StrandWriter& writer = **writer_result;

  // Anchor the copy in the original neighborhood — after the predecessor
  // block when one exists, else at the defective block's own position — so
  // the splice honours the scattering contract on both sides of the cut.
  PrimaryEntry anchor;
  if (first_block > 0 && AnchorEntry(strand, first_block - 1, &anchor)) {
    if (Status status = writer.SetAnchor(anchor.sector + anchor.sector_count); !status.ok()) {
      return status;
    }
  } else {
    Result<PrimaryEntry> first = strand.index().Lookup(first_block);
    if (!first.ok()) {
      return first.status();
    }
    if (!first->IsSilence()) {
      writer.SetAllocationHint(first->sector);
    }
  }

  BlockRelocationOutcome outcome;
  int64_t copied_units = 0;
  // One payload buffer for the whole copy: ReadSalvage overwrites it in
  // full each block, so reusing the capacity keeps a large relocation from
  // allocating O(blocks) buffers.
  std::vector<uint8_t> payload;
  for (int64_t i = 0; i < block_count; ++i) {
    const int64_t block = first_block + i;
    Result<PrimaryEntry> entry = strand.index().Lookup(block);
    if (!entry.ok()) {
      return entry.status();
    }
    if (entry->IsSilence()) {
      if (Status status = writer.AppendSilence(); !status.ok()) {
        return status;
      }
    } else {
      Result<SimDuration> read =
          store->disk().ReadSalvage(entry->sector, entry->sector_count, &payload);
      if (!read.ok()) {
        return read.status();  // salvage only fails when the device is down
      }
      outcome.copy_time += *read;
      if (payload.empty()) {
        payload.assign(static_cast<size_t>(entry->sector_count *
                                           store->disk().bytes_per_sector()),
                       0);
      }
      Result<SimDuration> write = writer.AppendBlock(payload);
      // The destination itself can hit a transient write fault; the faulted
      // extent was returned to the pool, so a re-append lands afresh.
      for (int attempt = 0;
           !write.ok() && write.status().code() == ErrorCode::kIoError && attempt < 3;
           ++attempt) {
        outcome.copy_time += store->disk().last_fault_service();
        write = writer.AppendBlock(payload);
      }
      if (!write.ok()) {
        return write.status();
      }
      outcome.copy_time += *write;
      if (store->trace_sink() != nullptr) {
        obs::TraceEvent event;
        event.kind = obs::TraceEventKind::kBlockRelocated;
        event.sector = entry->sector;
        event.blocks = 1;
        event.duration = *read + *write;
        store->trace_sink()->OnEvent(event);
      }
    }
    copied_units += strand.UnitsInBlock(block);
    ++outcome.blocks_copied;
  }
  Result<StrandId> copy_id = writer.Finish(copied_units);
  if (!copy_id.ok()) {
    return copy_id.status();
  }
  outcome.copy_strand = *copy_id;
  return outcome;
}

}  // namespace vafs
