// Round-robin request servicing with admission control (Section 3.4).
//
// The storage manager services all active requests in rounds: in each
// round it transfers k consecutive blocks per request, paying a worst-case
// reposition when switching between requests and the strand's scattering
// between blocks of one request. k comes from admission control; admitting
// a new request that needs a larger k raises k one step per round (the
// transient-safe transition of Eq. 18) before the newcomer starts, so
// in-flight streams never glitch.
//
// Playback requests feed PlaybackConsumers that check every block against
// its playback deadline; recording requests write captured blocks through
// a StrandWriter, honouring capture-device buffer limits. The scheduler
// runs under the discrete-event simulator: each round is one event, and
// all disk service times come from the disk model.

#ifndef VAFS_SRC_MSM_SERVICE_SCHEDULER_H_
#define VAFS_SRC_MSM_SERVICE_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/core/admission.h"
#include "src/layout/strand_index.h"
#include "src/media/devices.h"
#include "src/msm/strand_store.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "src/util/result.h"

namespace vafs {

using RequestId = uint64_t;

// A fully resolved playback request: the block locations in playback
// order (silence entries advance time without disk traffic).
struct PlaybackRequest {
  std::vector<PrimaryEntry> blocks;
  SimDuration block_duration = 0;   // playback duration of one block
  RequestSpec spec;                 // admission-control view (q_i, s_i, R_i)
  double rate_multiplier = 1.0;     // >1 = fast-forward without skipping
  int64_t read_ahead_blocks = 0;    // 0: use k at admission time
  int64_t device_buffers = 0;       // 0: use 2k (pipelined double buffering)
};

// A recording request: capture produces blocks at the recording rate into
// `capture_buffers` device buffers; the scheduler writes them to a new
// strand as rounds come by.
struct RecordingRequest {
  MediaProfile profile;
  StrandPlacement placement;
  int64_t total_blocks = 0;
  int64_t capture_buffers = 4;
  RequestSpec Spec() const { return RequestSpec{profile, placement.granularity}; }
};

struct RequestStats {
  RequestId id = 0;
  bool is_recording = false;
  bool completed = false;
  bool paused = false;
  SimTime submit_time = 0;
  SimTime start_time = -1;       // first round that serviced it
  SimTime completion_time = -1;
  int64_t blocks_done = 0;
  int64_t blocks_total = 0;
  // Fault handling (src/disk/fault_injector.h): every faulted disk op the
  // request suffered, the retries issued for them, and the blocks finally
  // given up on (played/recorded as silence instead of killing the stream).
  int64_t faults_seen = 0;
  int64_t blocks_retried = 0;
  int64_t blocks_skipped = 0;
  // Playback only:
  int64_t continuity_violations = 0;
  SimDuration total_tardiness = 0;
  int64_t max_buffered_blocks = 0;
  // Submit -> first block's playback start; kUnsetLatency until playback
  // actually starts (zero is a legitimate latency, not a sentinel).
  static constexpr SimDuration kUnsetLatency = -1;
  SimDuration startup_latency = kUnsetLatency;
  // Recording only:
  int64_t capture_overflows = 0;
  StrandId recorded_strand = kNullStrand;
};

// Order in which the requests of one round are serviced. The paper's
// baseline is round-robin in arrival order, charging every switch a
// worst-case reposition; Section 6.2 proposes servicing in the order that
// minimizes inter-request seeks, which kSeekScan approximates by sorting
// each round's requests by their next block's disk position.
enum class ServiceOrder {
  kRoundRobin,
  kSeekScan,
};

struct SchedulerOptions {
  // If false, k jumps straight to the new target on admission (the naive
  // policy the paper warns about); if true, k steps by 1 per round.
  bool stepped_transitions = true;
  // Upper bound on k to keep startup latencies sane; 0 = unlimited.
  int64_t max_k = 0;
  ServiceOrder service_order = ServiceOrder::kRoundRobin;
  // Experiments only: admit every request regardless of the admission
  // test, with a fixed round size (`forced_k`, or the current k if 0).
  bool bypass_admission = false;
  int64_t forced_k = 0;
  // Most re-reads of one faulted block before the scheduler gives up and
  // plays it as silence. Each retry must additionally fit the round's
  // Eq. 11 budget — a retry never eats another stream's continuity slack.
  int64_t max_block_retries = 2;
  // Optional observability: request lifecycle, admission decisions and
  // per-round service records are reported here (see src/obs/trace.h).
  // The sink must outlive the scheduler.
  obs::TraceSink* trace = nullptr;
};

class ServiceScheduler {
 public:
  ServiceScheduler(StrandStore* store, Simulator* simulator, AdmissionControl admission,
                   SchedulerOptions options = SchedulerOptions());

  // Admission-checked submission. The request starts at the next round
  // boundary once any k transition completes.
  Result<RequestId> SubmitPlayback(PlaybackRequest request);
  Result<RequestId> SubmitRecording(RecordingRequest request);

  // Halts a request; its resources are released at the next round edge.
  Status Stop(RequestId id);

  // PAUSE: a destructive pause releases the request's admission slot
  // immediately — it leaves the service rotation, stops counting against
  // admission, and k may shrink to fit the remaining slot holders; a later
  // RESUME re-runs admission control and may be rejected if the slot was
  // given away. A non-destructive pause keeps the slot occupied,
  // guaranteeing the RESUME.
  Status Pause(RequestId id, bool destructive);
  Status Resume(RequestId id);

  // Drives the simulator until all submitted requests complete (or only
  // paused ones remain).
  void RunUntilIdle();

  Result<RequestStats> stats(RequestId id) const;
  int64_t current_k() const { return current_k_; }
  int64_t active_request_count() const;
  int64_t rounds_executed() const { return rounds_; }

 private:
  struct ActiveRequest {
    RequestStats stats;
    bool destructively_paused = false;
    // Playback state.
    std::optional<PlaybackRequest> playback;
    std::unique_ptr<PlaybackConsumer> consumer;
    std::vector<SimTime> prelude_ready_times;  // before read-ahead is met
    int64_t next_block = 0;
    int64_t read_ahead = 1;
    int64_t buffer_cap = 0;
    // Recording state.
    std::optional<RecordingRequest> recording;
    std::unique_ptr<CaptureProducer> producer;
    std::unique_ptr<StrandWriter> writer;
  };

  // A request waiting to join, with the k values to step through first.
  struct PendingAdmission {
    RequestId id;
    std::deque<int64_t> k_schedule;
  };

  Result<RequestId> Submit(ActiveRequest request, const RequestSpec& spec);
  // The requests currently holding an admission slot: running, pending, or
  // non-destructively paused. Destructively paused requests gave theirs up.
  std::vector<RequestSpec> SlotHolderSpecs() const;
  bool IsPending(RequestId id) const;
  // Slot ledger by lifecycle state, for trace events.
  obs::SlotSnapshot Snapshot() const;
  // Builds a trace event pre-filled with time/round/k/ledger context; the
  // caller adds kind-specific fields and passes it to Emit.
  obs::TraceEvent TraceContext() const;
  void Emit(const obs::TraceEvent& event) const;
  void ScheduleRound();
  void RunRound();
  // First disk position the request will touch next (for kSeekScan).
  int64_t NextSector(const ActiveRequest& request) const;
  // Services one request within the round; advances `now` by the disk time
  // spent. Returns blocks transferred.
  int64_t ServicePlayback(ActiveRequest* request, SimTime* now);
  int64_t ServiceRecording(ActiveRequest* request, SimTime* now);
  // Reads one playback block, retrying transient faults while the round's
  // Eq. 11 budget allows. Advances `now` by all disk time consumed (faulted
  // attempts included). Returns false when the block was given up on.
  bool ReadBlockWithRetry(ActiveRequest* request, const PrimaryEntry& entry, SimTime* now);
  void FinishRequest(ActiveRequest* request, SimTime now);

  StrandStore* store_;
  Simulator* simulator_;
  AdmissionControl admission_;
  SchedulerOptions options_;
  RequestId next_id_ = 1;
  int64_t current_k_ = 1;
  int64_t rounds_ = 0;
  bool round_scheduled_ = false;
  // The running round's Eq. 11 envelope: start instant and the tightest
  // request's playback budget, min_i(k_i * d_i). Retries are only issued
  // while the round still fits inside it. 0 budget = no active requests.
  SimTime round_start_ = 0;
  SimDuration round_budget_ = 0;
  std::map<RequestId, ActiveRequest> requests_;
  std::vector<RequestId> service_order_;  // round-robin order over active requests
  std::deque<PendingAdmission> pending_;
};

}  // namespace vafs

#endif  // VAFS_SRC_MSM_SERVICE_SCHEDULER_H_
