// Round-robin request servicing with admission control (Section 3.4).
//
// The storage manager services all active requests in rounds: in each
// round it transfers k consecutive blocks per request, paying a worst-case
// reposition when switching between requests and the strand's scattering
// between blocks of one request. k comes from admission control; admitting
// a new request that needs a larger k raises k one step per round (the
// transient-safe transition of Eq. 18) before the newcomer starts, so
// in-flight streams never glitch.
//
// Playback requests feed PlaybackConsumers that check every block against
// its playback deadline; recording requests write captured blocks through
// a StrandWriter, honouring capture-device buffer limits. The scheduler
// runs under the discrete-event simulator: each round is one event, and
// all disk service times come from the disk model.
//
// ServiceOrder::kPlanned engages the round I/O planner
// (src/msm/round_planner.h): the round's block needs are collected up
// front, coalesced, deduplicated, C-SCAN-ordered per device, optionally
// dispatched in parallel across a DiskArray, and probed against a shared
// BlockCache before touching the platter. Admission stays planned against
// the paper's worst-case alpha/beta; the planner only converts the
// difference between that bound and the realized mechanism into slack
// (plus, with cache-aware admission, into extra streams).

#ifndef VAFS_SRC_MSM_SERVICE_SCHEDULER_H_
#define VAFS_SRC_MSM_SERVICE_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/admission.h"
#include "src/disk/disk_array.h"
#include "src/layout/strand_index.h"
#include "src/media/devices.h"
#include "src/msm/block_cache.h"
#include "src/msm/round_planner.h"
#include "src/msm/strand_store.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "src/util/result.h"

namespace vafs {

using RequestId = uint64_t;

// A fully resolved playback request: the block locations in playback
// order (silence entries advance time without disk traffic).
struct PlaybackRequest {
  std::vector<PrimaryEntry> blocks;
  SimDuration block_duration = 0;   // playback duration of one block
  RequestSpec spec;                 // admission-control view (q_i, s_i, R_i)
  double rate_multiplier = 1.0;     // >1 = fast-forward without skipping
  int64_t read_ahead_blocks = 0;    // 0: use k at admission time
  int64_t device_buffers = 0;       // 0: use 2k (pipelined double buffering)
};

// A recording request: capture produces blocks at the recording rate into
// `capture_buffers` device buffers; the scheduler writes them to a new
// strand as rounds come by.
struct RecordingRequest {
  MediaProfile profile;
  StrandPlacement placement;
  int64_t total_blocks = 0;
  int64_t capture_buffers = 4;
  RequestSpec Spec() const { return RequestSpec{profile, placement.granularity}; }
};

struct RequestStats {
  RequestId id = 0;
  bool is_recording = false;
  bool completed = false;
  bool paused = false;
  // Admitted on expected block-cache coverage instead of the Eq. 17 test;
  // such a stream is destructively paused if its coverage collapses.
  bool cache_admitted = false;
  SimTime submit_time = 0;
  SimTime start_time = -1;       // first round that serviced it
  SimTime completion_time = -1;
  int64_t blocks_done = 0;
  int64_t blocks_total = 0;
  // Fault handling (src/disk/fault_injector.h): every faulted disk op the
  // request suffered, the retries issued for them, and the blocks finally
  // given up on (played/recorded as silence instead of killing the stream).
  int64_t faults_seen = 0;
  int64_t blocks_retried = 0;
  int64_t blocks_skipped = 0;
  // Playback only:
  int64_t continuity_violations = 0;
  SimDuration total_tardiness = 0;
  int64_t max_buffered_blocks = 0;
  // Submit -> first block's playback start; kUnsetLatency until playback
  // actually starts (zero is a legitimate latency, not a sentinel).
  static constexpr SimDuration kUnsetLatency = -1;
  SimDuration startup_latency = kUnsetLatency;
  // Recording only:
  int64_t capture_overflows = 0;
  StrandId recorded_strand = kNullStrand;
};

// Order in which the requests of one round are serviced. The paper's
// baseline is round-robin in arrival order, charging every switch a
// worst-case reposition; Section 6.2 proposes servicing in the order that
// minimizes inter-request seeks. kSeekScan approximates that by sorting
// each round's *requests* by their next block's position; kPlanned
// supersedes it with per-transfer planning: coalescing, dedup, block-level
// C-SCAN and (with a DiskArray) parallel member dispatch.
enum class ServiceOrder {
  kRoundRobin,
  kSeekScan,
  kPlanned,
};

struct SchedulerOptions {
  // If false, k jumps straight to the new target on admission (the naive
  // policy the paper warns about); if true, k steps by 1 per round.
  bool stepped_transitions = true;
  // Upper bound on k to keep startup latencies sane; 0 = unlimited.
  int64_t max_k = 0;
  ServiceOrder service_order = ServiceOrder::kRoundRobin;
  // Experiments only: admit every request regardless of the admission
  // test, with a fixed round size (`forced_k`, or the current k if 0).
  bool bypass_admission = false;
  int64_t forced_k = 0;
  // Most re-reads of one faulted block before the scheduler gives up and
  // plays it as silence. Each retry must additionally fit the round's
  // Eq. 11 budget — a retry never eats another stream's continuity slack.
  int64_t max_block_retries = 2;
  // Shared block cache probed by kPlanned rounds (see src/msm/block_cache.h).
  // Must outlive the scheduler; null or capacity 0 disables caching. Wire
  // the same cache into the StrandStore (set_block_cache) so writes
  // invalidate.
  BlockCache* block_cache = nullptr;
  // When set, kPlanned rounds dispatch playback reads across this array's
  // members in parallel waves (one ReadBatch per queue depth); appends stay
  // on the store's primary spindle. Member geometry must match the store
  // disk. Must outlive the scheduler.
  DiskArray* disk_array = nullptr;
  // Wall-clock execution engine (DESIGN.md section 12): pool the array's
  // member waves run on as real parallel tasks. Null (or 1 worker) keeps
  // every wave inline — the sequential reference execution. Simulated-time
  // results are byte-identical either way; only host CPU time changes.
  // Must outlive the scheduler. Requires disk_array to have any effect.
  WorkerPool* worker_pool = nullptr;
  // End-to-end payload verification: planned waves read block data and
  // each member task folds a CRC-64 of the bytes it moved; the scheduler
  // combines them in batch order into payload_digest(). The hashing runs
  // inside the member tasks (on the pool when one is set), keeping the
  // checksum work off the round's critical path.
  bool verify_payloads = false;
  // Cache-aware admission (kPlanned + cache only): a playback request the
  // Eq. 17 test rejects is still admitted when at least
  // `cache_admission_min_hit_rate` of its upcoming window is expected from
  // memory (resident, or scheduled by another active stream of the same
  // strand). If a round's realized coverage drops below the threshold the
  // stream is destructively paused — the set degrades back to n_max.
  bool cache_aware_admission = false;
  double cache_admission_min_hit_rate = 0.6;
  int64_t cache_admission_window = 0;  // blocks of lookahead; 0 = 4k
  // Optional observability: request lifecycle, admission decisions and
  // per-round service records are reported here (see src/obs/trace.h).
  // The sink must outlive the scheduler.
  obs::TraceSink* trace = nullptr;
  // Incremental round planning (kPlanned only): reuse each stream's cached
  // coalesced runs and the previous round's C-SCAN order, re-sorting only
  // streams whose extents changed (DESIGN.md section 15). Off = rebuild
  // every plan from scratch. The dispatch program is byte-identical either
  // way; bench_scale and the scale test verify the digests agree.
  bool incremental_planning = true;
  // Activate every pending admission whose k ramp is already satisfied in
  // one round instead of one per round. k itself still steps at most once
  // per round (Eq. 18); only same-k activations batch, so a 20k-stream
  // ramp-in is O(N) rounds -> O(1). Off by default: the paper's rotation
  // admits one newcomer per round and the seed benches count on it.
  bool batch_activation = false;
  // Test-only: iterate admission-ledger sweeps in raw slot-table order
  // instead of ascending request id. Observable results must not depend on
  // it (the scale test asserts digest equality across both settings).
  bool scan_slot_order = false;
  // Causal span tracing (src/obs/span.h): every round emits a span tree —
  // round root, per-wave, per-transfer, retry/append/cache sub-spans —
  // with ids derived from (node, round, stage, ordinal), plus a per-stage
  // service-time ledger on the root that partitions the round exactly.
  // All spans are emitted on the scheduler thread in batch order, so the
  // stream is byte-identical for any worker_pool size.
  bool emit_spans = false;
  // Storage-node id stamped on this scheduler's trace events and woven
  // into its trace ids (-1 = not part of a cluster).
  int64_t node = -1;
};

class ServiceScheduler {
 public:
  ServiceScheduler(StrandStore* store, Simulator* simulator, AdmissionControl admission,
                   SchedulerOptions options = SchedulerOptions());

  // Admission-checked submission. The request starts at the next round
  // boundary once any k transition completes.
  Result<RequestId> SubmitPlayback(PlaybackRequest request);
  Result<RequestId> SubmitRecording(RecordingRequest request);

  // Halts a request; its resources are released at the next round edge.
  Status Stop(RequestId id);

  // PAUSE: a destructive pause releases the request's admission slot
  // immediately — it leaves the service rotation, stops counting against
  // admission, and k may shrink to fit the remaining slot holders; a later
  // RESUME re-runs admission control and may be rejected if the slot was
  // given away. A non-destructive pause keeps the slot occupied,
  // guaranteeing the RESUME.
  Status Pause(RequestId id, bool destructive);
  Status Resume(RequestId id);

  // Drives the simulator until all submitted requests complete (or only
  // paused ones remain).
  void RunUntilIdle();

  Result<RequestStats> stats(RequestId id) const;
  int64_t current_k() const { return current_k_; }
  int64_t active_request_count() const;
  int64_t rounds_executed() const { return rounds_; }

  // Running FNV-1a-style fold of every payload CRC the planned waves
  // computed (SchedulerOptions::verify_payloads), combined in batch order
  // at each wave barrier — deterministic for any worker count. The offset
  // basis when verification is off or nothing transferred yet.
  uint64_t payload_digest() const { return payload_digest_; }

  // Marks a request as a stream-merging patch: its transfers are charged
  // to the merge_patch stage of the round's span ledger instead of
  // transfer. The session layer tags patch tickets through this.
  void set_merge_patch(RequestId id, bool patch);

  // Incremental-planner reuse counters (bench_scale reports these as the
  // evidence that unchanged streams skip the per-round re-sort).
  const IncrementalRoundPlanner::Stats& planner_stats() const { return planner_.stats(); }

 private:
  struct ActiveRequest {
    RequestStats stats;
    bool destructively_paused = false;
    // Mirrors membership in pending_ (the admission ramp queue), so the
    // O(1) slot ledger never scans the deque.
    bool pending = false;
    // Stream-merging patch stream: transfers charge the merge_patch stage
    // of the span ledger (set_merge_patch).
    bool merge_patch = false;
    // Playback state.
    std::optional<PlaybackRequest> playback;
    std::unique_ptr<PlaybackConsumer> consumer;
    std::vector<SimTime> prelude_ready_times;  // before read-ahead is met
    int64_t next_block = 0;
    int64_t read_ahead = 1;
    int64_t buffer_cap = 0;
    // Cache extents pinned for this request's anti-jitter prelude; unpinned
    // when playback starts (or the request leaves the rotation).
    std::vector<std::pair<int64_t, int64_t>> pinned_extents;
    // Recording state.
    std::optional<RecordingRequest> recording;
    std::unique_ptr<CaptureProducer> producer;
    std::unique_ptr<StrandWriter> writer;
  };

  // A request waiting to join, with the k values to step through first.
  struct PendingAdmission {
    RequestId id;
    std::deque<int64_t> k_schedule;
  };

  // --- Flat request table (DESIGN.md section 15) ----------------------------
  // Requests live in a dense slot table with a generation-stamped free
  // list; id -> slot is one vector index. A completed request's slot is
  // retired at the next round edge (RetireCompletedRequests) and its final
  // stats move to finished_stats_, so stats() keeps answering forever while
  // the hot path only ever walks live slots.
  struct Slot {
    RequestId id = 0;  // 0 = free
    uint32_t generation = 0;
    ActiveRequest request;
  };

  ActiveRequest* FindRequest(RequestId id);
  const ActiveRequest* FindRequest(RequestId id) const;
  // Must exist (asserts): the hot-path lookup for rotation members.
  ActiveRequest& RequestAt(RequestId id);
  const ActiveRequest& RequestAt(RequestId id) const;
  ActiveRequest& InsertRequest(RequestId id, ActiveRequest request);
  // Moves every completed request's stats to finished_stats_, frees its
  // slot and drops its cached planner runs. Round-edge only: within a
  // round completed entries must stay findable.
  void RetireCompletedRequests();
  // The slot-ledger column the request occupies (one of SlotSnapshot's
  // counters, or none for completed); delta is +-1.
  void CountSlots(const ActiveRequest& request, int64_t delta);
  // Wraps a state mutation so the O(1) ledger stays exact: the request is
  // removed from its column, mutated, and re-added to its (new) column.
  template <typename Fn>
  void WithSlotUpdate(ActiveRequest& request, Fn&& fn) {
    CountSlots(request, -1);
    fn();
    CountSlots(request, +1);
  }
  // Visits every live request. Ascending request id by default; raw slot
  // order under SchedulerOptions::scan_slot_order (test-only — callers must
  // be order-insensitive).
  template <typename Fn>
  void ForEachRequest(Fn&& fn) const {
    if (options_.scan_slot_order) {
      for (const Slot& slot : slots_) {
        if (slot.id != 0) {
          fn(slot.id, slot.request);
        }
      }
    } else {
      for (RequestId id : live_ids_) {
        fn(id, RequestAt(id));
      }
    }
  }

  Result<RequestId> Submit(ActiveRequest request, const RequestSpec& spec);
  // The requests currently holding an admission slot: running, pending, or
  // non-destructively paused. Destructively paused requests gave theirs up.
  std::vector<RequestSpec> SlotHolderSpecs() const;
  // Slot ledger by lifecycle state, for trace events. O(1): the counters
  // are maintained at every state transition (WithSlotUpdate).
  obs::SlotSnapshot Snapshot() const { return slot_counts_; }
  // Builds a trace event pre-filled with time/round/k/ledger context; the
  // caller adds kind-specific fields and passes it to Emit.
  obs::TraceEvent TraceContext() const;
  void Emit(const obs::TraceEvent& event) const;
  void ScheduleRound();
  void RunRound();
  // The running round's Eq. 11 envelope over the active rotation.
  void ComputeRoundBudget();
  // First disk position the request will touch next (for kSeekScan).
  int64_t NextSector(const ActiveRequest& request) const;
  // Services one request within the round; advances `now` by the disk time
  // spent. Returns blocks transferred.
  int64_t ServicePlayback(ActiveRequest* request, SimTime* now);
  // `max_blocks` bounds this call (current_k_ for the round-robin path; the
  // planned append count for planner rounds).
  int64_t ServiceRecording(ActiveRequest* request, SimTime* now, int64_t max_blocks);
  // The single audited retry-within-budget policy for every faulted
  // transfer (playback reads, planner transfers, recording appends).
  // Runs `attempt` once and retries transient faults while the round's
  // Eq. 11 budget allows; advances `now` by all disk time consumed
  // (faulted attempts included). `peek_retry` gives the exact cost of a
  // re-attempt when knowable (reads: the arm rests on the extent after the
  // fault); when null (appends allocate fresh extents per attempt) the
  // budget is checked at issue time and emitted events carry round_budget
  // 0, matching the capture-side contract. Returns false on give-up, with
  // the final status in `fail_status` when non-null.
  bool TransferWithRetry(ActiveRequest* request, Disk* device,
                         const std::function<Result<SimDuration>()>& attempt,
                         const std::function<SimDuration()>& peek_retry, int64_t sector,
                         int64_t sectors, SimTime* now, Status* fail_status);
  // Reads one extent with the shared retry policy; on give-up records the
  // skip against `request` and traces it. Returns false when given up.
  bool ReadExtentWithRetry(ActiveRequest* request, Disk* device, int64_t sector, int64_t sectors,
                           SimTime* now);
  // Reports the next playback block ready at `ready_time`: runs the
  // anti-jitter prelude until read-ahead is met, then feeds the consumer;
  // advances next_block / blocks_done.
  void ReportPlaybackReady(ActiveRequest* request, SimTime ready_time);
  void FinishRequest(ActiveRequest* request, SimTime now);
  void UnpinPreludePages(ActiveRequest* request);
  // Creates the capture producer and strand writer on first service.
  void EnsureRecordingDevices(ActiveRequest* request, SimTime now);

  // --- Round planner (ServiceOrder::kPlanned) -------------------------------
  // Collects every active request's block needs for the round starting at
  // `round_start`. `count_cache_stats` uses counting cache lookups; the
  // rebuild after a revocation probes silently to keep the hit rate honest.
  // Fills plan_inputs_ (inner vectors keep their capacity between rounds)
  // and returns it.
  const std::vector<PlanInput>& BuildPlanInputs(SimTime round_start, bool count_cache_stats);
  // Cache-admitted requests whose realized coverage (plan-time hits plus
  // shared-transfer rides) fell below the admission threshold.
  std::vector<RequestId> CollapsedCacheAdmissions(const std::vector<PlanInput>& inputs,
                                                  const RoundPlan& plan) const;
  // Expected fraction of the candidate's upcoming window (starting at
  // block `from_block`) served from memory (resident extents or another
  // active stream's scheduled reads).
  double ExpectedCacheCoverage(const PlaybackRequest& playback, int64_t from_block) const;
  bool CacheAdmissionEnabled() const;
  int64_t CacheLookaheadBlocks() const;
  // Executes one planned round: builds the program (revoking collapsed
  // cache admissions), dispatches it (C-SCAN on one spindle, or parallel
  // member waves through the DiskArray), reports readiness in playback
  // order, and emits kRoundPlanned / kRequestServiced / kSeekAccounting.
  // Returns the round's transferred total.
  int64_t ExecutePlannedRound(SimTime* now);

  // --- Causal span tracing (SchedulerOptions::emit_spans) -------------------
  // Per-round context: ids for the open round's span tree plus the stage
  // ledger that partitions the round's service time. Every `*now` advance
  // in the round is charged to exactly one stage, so the ledger sums to
  // the round duration by construction (the queue stage absorbs any
  // residual; in this simulator rounds only advance on disk ops, so the
  // residual is normally zero).
  struct SpanContext {
    bool open = false;
    uint64_t trace_id = 0;
    uint64_t root = 0;           // round root span id
    uint64_t ordinal = 0;        // next child ordinal under the root
    uint64_t active_parent = 0;  // enclosing transfer span for retry subspans
    uint64_t retry_ordinal = 0;  // next retry ordinal under active_parent
    SimDuration active_seek = 0; // seek time charged since OpenTransferSpan
    obs::SpanStage active_stage = obs::SpanStage::kTransfer;
    uint64_t active_request = 0;
    int64_t active_member = -1;
    obs::StageBreakdown stages;
  };
  // Adds `usec` to one ledger stage (no-op when no round span is open).
  void ChargeStage(obs::SpanStage stage, SimDuration usec);
  // Charges one clean transfer: the seek fraction (the arm's last reposition
  // time, clamped to the service) to kSeek and the remainder to `stage`;
  // append charges whole (allocation and write are not separable).
  void ChargeTransfer(obs::SpanStage stage, Disk* device, SimDuration service);
  // Opens a per-transfer child span under the round root and makes it the
  // active parent for retry subspans. Returns the span id.
  uint64_t OpenTransferSpan(obs::SpanStage stage, uint64_t request, int64_t member);
  // Emits one span event (scheduler thread only). `end` is the span's end
  // instant; `seek` the seek fraction of its duration.
  void EmitSpan(obs::SpanStage stage, uint64_t span_id, uint64_t parent, SimTime end,
                SimDuration duration, uint64_t request, int64_t member, SimDuration seek,
                int64_t blocks, int64_t sector);
  // Stage a request's reads charge: merge_patch for tagged patch streams.
  obs::SpanStage TransferStageFor(const ActiveRequest& request) const;

  StrandStore* store_;
  Simulator* simulator_;
  AdmissionControl admission_;
  SchedulerOptions options_;
  RequestId next_id_ = 1;
  int64_t current_k_ = 1;
  int64_t rounds_ = 0;
  bool round_scheduled_ = false;
  // The running round's Eq. 11 envelope: start instant and the tightest
  // request's playback budget, min_i(k_i * d_i). Retries are only issued
  // while the round still fits inside it. 0 budget = no active requests.
  SimTime round_start_ = 0;
  SimDuration round_budget_ = 0;
  // FNV-1a 64-bit offset basis; see payload_digest().
  uint64_t payload_digest_ = 14695981039346656037ULL;
  // Recording payload scratch when no shared cache provides a pool.
  PagePool scratch_pool_;
  SpanContext span_;

  // Flat request table (see the Slot comment above). std::deque keeps
  // ActiveRequest references stable across insertions, so a submission
  // arriving mid-round (session layer callbacks) cannot dangle the round's
  // in-flight references the way a reallocating vector would.
  std::deque<Slot> slots_;
  std::vector<int32_t> free_slots_;
  std::vector<int32_t> id_to_slot_;  // by RequestId; -1 = unknown or retired
  std::vector<RequestId> live_ids_;  // ascending (ids are issued monotonically)
  std::unordered_map<RequestId, RequestStats> finished_stats_;
  obs::SlotSnapshot slot_counts_;

  std::vector<RequestId> service_order_;  // round-robin order over active requests
  std::deque<PendingAdmission> pending_;

  // Incremental planner and the per-round scratch arenas. All of these are
  // cleared (capacity kept) every round, so a steady 20k-stream rotation
  // allocates nothing on the hot path after warm-up.
  IncrementalRoundPlanner planner_;
  RoundPlan scratch_plan_;  // from-scratch planning (incremental_planning off)
  std::vector<PlanInput> plan_inputs_;
  std::vector<int64_t> head_scratch_;
  // Per-candidate outcomes, indexed by PlannedBlock::slot (the planner's
  // round-global candidate numbering) — replaces a map keyed by
  // (request, ordinal).
  std::vector<SimTime> outcome_time_;
  std::vector<uint8_t> outcome_ok_;
  std::vector<uint8_t> outcome_known_;
  // Lookup-only per-round maps (never iterated, so unordered is safe for
  // determinism).
  std::unordered_map<uint64_t, SimDuration> attributed_;
  std::unordered_map<uint64_t, int64_t> append_done_;
  std::unordered_map<int64_t, int> wanted_;
  // Distinct-extent grouping scratch for one transfer (GroupExtents).
  std::vector<std::pair<int64_t, int64_t>> group_keys_;
  std::vector<std::vector<const PlannedBlock*>> group_riders_;
  size_t group_count_ = 0;
  std::vector<uint64_t> attribute_scratch_;
  // Array-wave dispatch scratch.
  std::vector<std::deque<const PlannedTransfer*>> queue_scratch_;
  std::vector<const PlannedTransfer*> append_scratch_;
  std::vector<DiskArray::BatchRequest> batch_scratch_;
  std::vector<const PlannedTransfer*> wave_scratch_;
  std::vector<int64_t> wave_dist_scratch_;
  std::vector<std::vector<uint8_t>*> wave_pages_;  // pooled payload buffers

  // Fills group_keys_/group_riders_[0..group_count_) with the transfer's
  // distinct extents in first-encounter order. One grouping is live at a
  // time; callers must finish with a group before regrouping.
  void GroupExtents(const RoundPlan& plan, const PlannedTransfer& transfer);
};

}  // namespace vafs

#endif  // VAFS_SRC_MSM_SERVICE_SCHEDULER_H_
