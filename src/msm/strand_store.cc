#include "src/msm/strand_store.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

namespace vafs {

namespace {

// Smallest cylinder distance whose seek time is at least `budget` (for
// enforcing a lower scattering bound). Zero when any distance qualifies.
int64_t MinCylinderDistanceForGap(const DiskModel& model, SimDuration min_gap) {
  const SimDuration budget = min_gap - model.AverageRotationalLatency();
  if (budget <= 0) {
    return 0;
  }
  int64_t lo = 0;
  int64_t hi = model.params().cylinders - 1;
  if (model.SeekTimeForDistance(hi) < budget) {
    // No distance on this disk seeks that slowly; the caller's window
    // will be empty and allocation correctly fails.
    return model.params().cylinders;
  }
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (model.SeekTimeForDistance(mid) >= budget) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace

StrandStore::StrandStore(Disk* disk) : disk_(disk), allocator_(&disk->model()) {}

void StrandStore::InvalidateCache(int64_t sector, int64_t sectors) {
  if (block_cache_ == nullptr) {
    return;
  }
  const int64_t dropped = block_cache_->InvalidateRange(sector, sectors);
  if (dropped > 0 && trace_ != nullptr) {
    obs::TraceEvent event;
    event.kind = obs::TraceEventKind::kCacheInvalidate;
    event.sector = sector;
    event.blocks = dropped;
    trace_->OnEvent(event);
  }
}

Result<std::unique_ptr<StrandWriter>> StrandStore::CreateStrand(
    const MediaProfile& media, const StrandPlacement& placement) {
  if (placement.granularity <= 0 || media.bits_per_unit <= 0 || media.units_per_sec <= 0) {
    return Status(ErrorCode::kInvalidArgument, "bad media profile or placement");
  }
  if (placement.max_scattering_sec < 0) {
    return Status(ErrorCode::kInvalidArgument, "negative scattering bound");
  }
  StrandInfo info;
  info.id = next_id_++;
  info.medium = media.medium;
  info.recording_rate = media.units_per_sec;
  info.bits_per_unit = media.bits_per_unit;
  info.granularity = placement.granularity;
  info.min_scattering_sec = placement.min_scattering_sec;
  info.max_scattering_sec = placement.max_scattering_sec;
  return std::unique_ptr<StrandWriter>(new StrandWriter(this, info));
}

StrandWriter::StrandWriter(StrandStore* store, StrandInfo info)
    : store_(store), info_(info) {
  const int64_t sector_bytes = store_->disk().bytes_per_sector();
  sectors_per_block_ = CeilDiv(info_.BlockBytes(), sector_bytes);
  const DiskModel& model = store_->model();
  max_distance_cylinders_ =
      model.MaxCylinderDistanceForGap(SecondsToUsec(info_.max_scattering_sec));
  if (max_distance_cylinders_ < 0) {
    // Even a zero-distance reposition exceeds the bound; constrain to the
    // same cylinder and let the continuity check upstream reject.
    max_distance_cylinders_ = 0;
  }
  min_distance_cylinders_ =
      MinCylinderDistanceForGap(model, SecondsToUsec(info_.min_scattering_sec));
}

StrandWriter::~StrandWriter() {
  if (!finished_) {
    // Abandoned recording: return everything to the free pool.
    for (const Extent& extent : extents_) {
      (void)store_->allocator().Free(extent);
    }
  }
}

Result<SimDuration> StrandWriter::AppendBlock(std::span<const uint8_t> payload) {
  if (finished_) {
    return Status(ErrorCode::kFailedPrecondition, "writer already finished");
  }
  const int64_t sector_bytes = store_->disk().bytes_per_sector();
  const int64_t max_bytes = sectors_per_block_ * sector_bytes;
  if (static_cast<int64_t>(payload.size()) > max_bytes || payload.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "payload of " + std::to_string(payload.size()) + " bytes for a block of " +
                      std::to_string(max_bytes));
  }
  const int64_t sectors = CeilDiv(static_cast<int64_t>(payload.size()), sector_bytes);

  // The first block anchors the whole constrained chain: with no explicit
  // hint it goes to the largest free run, which maximizes the room the
  // chain has to grow.
  Result<Extent> extent =
      previous_end_sector_ < 0
          ? (first_block_hint_ >= 0
                 ? store_->allocator().Allocate(sectors, first_block_hint_)
                 : store_->allocator().AllocateInLargest(sectors))
          : store_->allocator().AllocateNear(previous_end_sector_, sectors,
                                             max_distance_cylinders_, min_distance_cylinders_,
                                             preference_);
  if (!extent.ok()) {
    return extent.status();
  }

  // Pad the tail block to whole sectors.
  std::vector<uint8_t> padded;
  std::span<const uint8_t> to_write = payload;
  if (static_cast<int64_t>(payload.size()) != sectors * sector_bytes) {
    padded.assign(payload.begin(), payload.end());
    padded.resize(static_cast<size_t>(sectors * sector_bytes), 0);
    to_write = padded;
  }
  // The extent may have held a cached block of a deleted strand; the write
  // makes any such entry stale.
  store_->InvalidateCache(extent->start_sector, sectors);
  Result<SimDuration> service = store_->disk().Write(extent->start_sector, sectors, to_write);
  if (!service.ok()) {
    // The block never made it to disk, so the extent is not part of the
    // strand; return it or it leaks (the destructor only frees extents_).
    (void)store_->allocator().Free(*extent);
    return service.status();
  }

  double gap_sec = -1.0;  // -1: first block, no predecessor to gap against
  if (previous_end_sector_ >= 0) {
    gap_sec = UsecToSeconds(
        store_->model().AccessGap(previous_end_sector_ - 1, extent->start_sector));
    total_gap_sec_ += gap_sec;
    max_gap_sec_ = std::max(max_gap_sec_, gap_sec);
  }
  if (store_->trace_ != nullptr) {
    obs::TraceEvent event;
    event.kind = obs::TraceEventKind::kStrandWrite;
    event.sector = extent->start_sector;
    event.blocks = sectors;
    event.duration = *service;
    event.gap_sec = gap_sec;
    event.gap_bound_sec = info_.max_scattering_sec;
    store_->trace_->OnEvent(event);
  }
  previous_end_sector_ = extent->end_sector();
  extents_.push_back(*extent);
  index_.Append(PrimaryEntry{extent->start_sector, sectors});
  ++blocks_written_;
  return *service;
}

Status StrandWriter::AppendSilence() {
  if (finished_) {
    return Status(ErrorCode::kFailedPrecondition, "writer already finished");
  }
  index_.Append(PrimaryEntry{kSilenceSector, 0});
  return Status::Ok();
}

Status StrandWriter::SetAnchor(int64_t end_sector) {
  if (blocks_written_ > 0) {
    return Status(ErrorCode::kFailedPrecondition, "anchor must precede the first block");
  }
  if (end_sector <= 0 || end_sector > store_->disk().total_sectors()) {
    return Status(ErrorCode::kInvalidArgument, "anchor outside disk");
  }
  previous_end_sector_ = end_sector;
  return Status::Ok();
}

double StrandWriter::AverageGapSec() const {
  const int64_t gaps = blocks_written_ - 1;
  return gaps > 0 ? total_gap_sec_ / static_cast<double>(gaps) : 0.0;
}

Result<StrandId> StrandWriter::Finish(int64_t unit_count) {
  if (finished_) {
    return Status(ErrorCode::kFailedPrecondition, "writer already finished");
  }
  if (unit_count <= 0 || CeilDiv(unit_count, info_.granularity) != index_.block_count()) {
    return Status(ErrorCode::kInvalidArgument,
                  "unit count " + std::to_string(unit_count) + " inconsistent with " +
                      std::to_string(index_.block_count()) + " blocks of granularity " +
                      std::to_string(info_.granularity));
  }
  info_.unit_count = unit_count;

  // Persist the index: PBs first (collecting their placements), then SBs,
  // then the HB. Index blocks are not rate-critical, so they allocate
  // unconstrained — typically landing in the scattering gaps between media
  // blocks, exactly where the paper stores non-real-time data.
  const int64_t sector_bytes = store_->disk().bytes_per_sector();
  auto persist = [&](const std::vector<uint8_t>& blob) -> Result<std::pair<int64_t, int64_t>> {
    const int64_t sectors = std::max<int64_t>(1, CeilDiv(static_cast<int64_t>(blob.size()),
                                                         sector_bytes));
    Result<Extent> extent = store_->allocator().Allocate(sectors);
    if (!extent.ok()) {
      return extent.status();
    }
    std::vector<uint8_t> padded = blob;
    padded.resize(static_cast<size_t>(sectors * sector_bytes), 0);
    store_->InvalidateCache(extent->start_sector, sectors);
    if (Result<SimDuration> write =
            store_->disk().Write(extent->start_sector, sectors, padded);
        !write.ok()) {
      return write.status();
    }
    owned_index_.push_back(*extent);
    return std::make_pair(extent->start_sector, sectors);
  };

  std::vector<std::pair<int64_t, int64_t>> pb_extents;
  for (int64_t pb = 0; pb < index_.primary_block_count(); ++pb) {
    Result<std::pair<int64_t, int64_t>> placed = persist(index_.SerializePrimaryBlock(pb));
    if (!placed.ok()) {
      return placed.status();
    }
    pb_extents.push_back(*placed);
  }
  std::vector<std::pair<int64_t, int64_t>> sb_extents;
  for (int64_t sb = 0; sb < index_.secondary_block_count(); ++sb) {
    Result<std::pair<int64_t, int64_t>> placed =
        persist(index_.SerializeSecondaryBlock(sb, pb_extents));
    if (!placed.ok()) {
      return placed.status();
    }
    sb_extents.push_back(*placed);
  }
  StrandIndex::HeaderMeta meta;
  meta.id = static_cast<int64_t>(info_.id);
  meta.medium = info_.medium == Medium::kVideo ? 0 : 1;
  meta.recording_rate = info_.recording_rate;
  meta.bits_per_unit = info_.bits_per_unit;
  meta.granularity = info_.granularity;
  meta.unit_count = unit_count;
  meta.min_scattering_sec = info_.min_scattering_sec;
  meta.max_scattering_sec = info_.max_scattering_sec;
  if (Result<std::pair<int64_t, int64_t>> placed =
          persist(index_.SerializeHeaderBlock(meta, sb_extents));
      !placed.ok()) {
    return placed.status();
  }

  StrandStore::StrandRecord record;
  record.strand = std::make_unique<Strand>(info_, std::move(index_));
  record.data_extents = std::move(extents_);
  record.index_extents = std::move(owned_index_);
  record.total_gap_sec = total_gap_sec_;
  record.gap_count = blocks_written_ > 0 ? blocks_written_ - 1 : 0;
  const Extent header_block = record.index_extents.back();
  store_->strands_[info_.id] = std::move(record);
  finished_ = true;
  if (store_->catalog_listener_ != nullptr) {
    store_->catalog_listener_->OnStrandAdded(
        StrandStore::CatalogEntry{info_, header_block});
  }
  return info_.id;
}

Result<const Strand*> StrandStore::Get(StrandId id) const {
  auto it = strands_.find(id);
  if (it == strands_.end()) {
    return Status(ErrorCode::kNotFound, "strand " + std::to_string(id));
  }
  return it->second.strand.get();
}

Status StrandStore::Delete(StrandId id) {
  auto it = strands_.find(id);
  if (it == strands_.end()) {
    return Status(ErrorCode::kNotFound, "strand " + std::to_string(id));
  }
  for (const Extent& extent : it->second.data_extents) {
    if (Status status = allocator_.Free(extent); !status.ok()) {
      return status;
    }
    // The freed extent will be reallocated; a resident copy of its old
    // contents must not outlive the strand.
    InvalidateCache(extent.start_sector, extent.sectors);
  }
  for (const Extent& extent : it->second.index_extents) {
    if (Status status = allocator_.Free(extent); !status.ok()) {
      return status;
    }
    InvalidateCache(extent.start_sector, extent.sectors);
  }
  strands_.erase(it);
  if (catalog_listener_ != nullptr) {
    catalog_listener_->OnStrandDeleted(id);
  }
  return Status::Ok();
}

std::vector<Extent> StrandStore::AllExtents() const {
  std::vector<Extent> extents;
  for (const auto& [id, record] : strands_) {
    extents.insert(extents.end(), record.data_extents.begin(), record.data_extents.end());
    extents.insert(extents.end(), record.index_extents.begin(), record.index_extents.end());
  }
  return extents;
}

std::vector<StrandId> StrandStore::AllIds() const {
  std::vector<StrandId> ids;
  ids.reserve(strands_.size());
  for (const auto& [id, record] : strands_) {
    ids.push_back(id);
  }
  return ids;
}

std::vector<StrandStore::CatalogEntry> StrandStore::ExportCatalog() const {
  std::vector<CatalogEntry> catalog;
  for (const auto& [id, record] : strands_) {
    CatalogEntry entry;
    entry.info = record.strand->info();
    // The Header Block is persisted last (see StrandWriter::Finish).
    entry.header_block = record.index_extents.back();
    catalog.push_back(entry);
  }
  return catalog;
}

Status StrandStore::AdoptStrand(const StrandInfo& info, StrandIndex index,
                                std::vector<Extent> index_extents) {
  if (strands_.count(info.id) != 0) {
    return Status(ErrorCode::kAlreadyExists, "strand " + std::to_string(info.id));
  }
  StrandRecord record;
  // Mark every extent the strand occupies and rebuild the gap statistics
  // the catalog does not store.
  int64_t previous_end = -1;
  for (const PrimaryEntry& entry : index.entries()) {
    if (entry.IsSilence()) {
      continue;
    }
    const Extent extent{entry.sector, entry.sector_count};
    if (Status status = allocator_.AllocateExact(extent); !status.ok()) {
      return Status(ErrorCode::kInternal,
                    "recovered extent overlaps existing allocation: " + status.message());
    }
    record.data_extents.push_back(extent);
    if (previous_end > 0) {
      record.total_gap_sec +=
          UsecToSeconds(model().AccessGap(previous_end - 1, entry.sector));
      ++record.gap_count;
    }
    previous_end = extent.end_sector();
  }
  for (const Extent& extent : index_extents) {
    if (Status status = allocator_.AllocateExact(extent); !status.ok()) {
      return Status(ErrorCode::kInternal,
                    "recovered index extent overlaps: " + status.message());
    }
  }
  record.index_extents = std::move(index_extents);
  record.strand = std::make_unique<Strand>(info, std::move(index));
  strands_[info.id] = std::move(record);
  if (info.id >= next_id_) {
    next_id_ = info.id + 1;
  }
  return Status::Ok();
}

double StrandStore::AverageScatteringSec() const {
  double total = 0.0;
  int64_t count = 0;
  for (const auto& [id, record] : strands_) {
    total += record.total_gap_sec;
    count += record.gap_count;
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

Result<SimDuration> StrandStore::ReadBlock(StrandId id, int64_t block_number,
                                           std::vector<uint8_t>* out) {
  Result<const Strand*> strand = Get(id);
  if (!strand.ok()) {
    return strand.status();
  }
  Result<PrimaryEntry> entry = (*strand)->index().Lookup(block_number);
  if (!entry.ok()) {
    return entry.status();
  }
  if (entry->IsSilence()) {
    if (out != nullptr) {
      out->clear();
    }
    return static_cast<SimDuration>(0);
  }
  return disk_->Read(entry->sector, entry->sector_count, out);
}

}  // namespace vafs
