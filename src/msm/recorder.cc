#include "src/msm/recorder.h"

#include <cmath>
#include <vector>

namespace vafs {

Result<RecordingResult> RecordVideo(StrandStore* store, VideoSource* source,
                                    const StrandPlacement& placement, double duration_sec) {
  const MediaProfile& profile = source->profile();
  const int64_t total_frames = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(duration_sec * profile.units_per_sec)));

  Result<std::unique_ptr<StrandWriter>> writer = store->CreateStrand(profile, placement);
  if (!writer.ok()) {
    return writer.status();
  }

  std::vector<uint8_t> block;
  int64_t frames_in_block = 0;
  for (int64_t frame = 0; frame < total_frames; ++frame) {
    VideoFrame captured = source->NextFrame();
    block.insert(block.end(), captured.payload.begin(), captured.payload.end());
    if (++frames_in_block == placement.granularity || frame + 1 == total_frames) {
      if (Result<SimDuration> written = (*writer)->AppendBlock(block); !written.ok()) {
        return written.status();
      }
      block.clear();
      frames_in_block = 0;
    }
  }

  RecordingResult result;
  result.blocks_total = (*writer)->blocks_written();
  result.units_recorded = total_frames;
  result.avg_gap_sec = (*writer)->AverageGapSec();
  result.max_gap_sec = (*writer)->MaxGapSec();
  Result<StrandId> id = (*writer)->Finish(total_frames);
  if (!id.ok()) {
    return id.status();
  }
  result.strand = *id;
  return result;
}

Result<RecordingResult> RecordVbrVideo(StrandStore* store, VbrVideoSource* source,
                                       const StrandPlacement& placement, double duration_sec) {
  const MediaProfile& profile = source->profile();
  const int64_t total_frames = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(duration_sec * profile.units_per_sec)));

  Result<std::unique_ptr<StrandWriter>> writer = store->CreateStrand(profile, placement);
  if (!writer.ok()) {
    return writer.status();
  }

  RecordingResult result;
  std::vector<uint8_t> block;
  int64_t frames_in_block = 0;
  for (int64_t frame = 0; frame < total_frames; ++frame) {
    VideoFrame captured = source->NextFrame();
    block.insert(block.end(), captured.payload.begin(), captured.payload.end());
    if (++frames_in_block == placement.granularity || frame + 1 == total_frames) {
      result.block_bits.push_back(static_cast<int64_t>(block.size()) * 8);
      if (Result<SimDuration> written = (*writer)->AppendBlock(block); !written.ok()) {
        return written.status();
      }
      block.clear();
      frames_in_block = 0;
    }
  }

  result.blocks_total = (*writer)->blocks_written();
  result.units_recorded = total_frames;
  result.avg_gap_sec = (*writer)->AverageGapSec();
  result.max_gap_sec = (*writer)->MaxGapSec();
  Result<StrandId> id = (*writer)->Finish(total_frames);
  if (!id.ok()) {
    return id.status();
  }
  result.strand = *id;
  return result;
}

Result<RecordingResult> RecordAudio(StrandStore* store, AudioSource* source,
                                    const SilenceDetector& detector,
                                    const StrandPlacement& placement, double duration_sec) {
  const MediaProfile& profile = source->profile();
  const int64_t total_samples = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(duration_sec * profile.units_per_sec)));

  Result<std::unique_ptr<StrandWriter>> writer = store->CreateStrand(profile, placement);
  if (!writer.ok()) {
    return writer.status();
  }

  RecordingResult result;
  int64_t produced = 0;
  while (produced < total_samples) {
    const int64_t count = std::min(placement.granularity, total_samples - produced);
    std::vector<uint8_t> samples = source->NextSamples(count);
    produced += count;
    if (detector.IsSilent(samples)) {
      if (Status status = (*writer)->AppendSilence(); !status.ok()) {
        return status;
      }
      ++result.silence_blocks;
    } else {
      if (Result<SimDuration> written = (*writer)->AppendBlock(samples); !written.ok()) {
        return written.status();
      }
    }
    ++result.blocks_total;
  }

  result.units_recorded = total_samples;
  result.avg_gap_sec = (*writer)->AverageGapSec();
  result.max_gap_sec = (*writer)->MaxGapSec();
  Result<StrandId> id = (*writer)->Finish(total_samples);
  if (!id.ok()) {
    return id.status();
  }
  result.strand = *id;
  return result;
}

}  // namespace vafs
