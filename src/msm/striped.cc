#include "src/msm/striped.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/util/units.h"

namespace vafs {

StripedStore::StripedStore(DiskArray* array) : array_(array) {
  for (int m = 0; m < array_->members(); ++m) {
    allocators_.push_back(std::make_unique<ConstrainedAllocator>(&array_->member_model()));
  }
}

Result<StripedStrand> StripedStore::Record(const MediaProfile& media,
                                           const StrandPlacement& placement,
                                           double duration_sec) {
  const DiskModel& model = array_->member_model();
  const int64_t sector_bytes = model.params().bytes_per_sector;
  const int64_t block_bytes = BitsToBytesCeil(placement.granularity * media.bits_per_unit);
  const int64_t sectors = CeilDiv(block_bytes, sector_bytes);
  const int64_t total_units = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(duration_sec * media.units_per_sec)));
  const int64_t total_blocks = CeilDiv(total_units, placement.granularity);

  int64_t max_distance = model.MaxCylinderDistanceForGap(
      SecondsToUsec(placement.max_scattering_sec));
  if (max_distance < 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "scattering bound below one rotational latency");
  }

  StripedStrand strand;
  strand.profile = media;
  strand.granularity = placement.granularity;
  strand.unit_count = total_units;

  const std::vector<uint8_t> payload(static_cast<size_t>(sectors * sector_bytes), 0);
  // Per-member chain anchors: the previous block on the same member.
  std::vector<int64_t> previous_end(static_cast<size_t>(members()), -1);
  auto rollback = [&] {
    (void)Free(strand);
  };
  for (int64_t b = 0; b < total_blocks; ++b) {
    const int member = array_->MemberForBlock(b);
    ConstrainedAllocator& allocator = *allocators_[static_cast<size_t>(member)];
    int64_t& anchor = previous_end[static_cast<size_t>(member)];
    Result<Extent> extent = anchor < 0
                                ? allocator.AllocateInLargest(sectors)
                                : allocator.AllocateNear(anchor, sectors, max_distance);
    if (!extent.ok()) {
      rollback();
      return extent.status();
    }
    Result<SimDuration> written =
        array_->member(member).Write(extent->start_sector, sectors, payload);
    if (!written.ok()) {
      rollback();
      return written.status();
    }
    anchor = extent->end_sector();
    strand.blocks.push_back(PrimaryEntry{extent->start_sector, sectors});
  }
  return strand;
}

Status StripedStore::Free(const StripedStrand& strand) {
  for (size_t b = 0; b < strand.blocks.size(); ++b) {
    const PrimaryEntry& entry = strand.blocks[b];
    if (entry.IsSilence()) {
      continue;
    }
    const int member = array_->MemberForBlock(static_cast<int64_t>(b));
    (void)allocators_[static_cast<size_t>(member)]->Free(
        Extent{entry.sector, entry.sector_count});
  }
  return Status::Ok();
}

Result<StripedStore::PlaybackOutcome> StripedStore::Play(const StripedStrand& strand,
                                                         int64_t buffer_cap) {
  if (strand.blocks.empty()) {
    return Status(ErrorCode::kInvalidArgument, "empty striped strand");
  }
  const int p = members();
  const SimDuration block_duration = SecondsToUsec(
      static_cast<double>(strand.granularity) / strand.profile.units_per_sec);
  const int64_t cap = buffer_cap > 0 ? buffer_cap : 2 * p;

  PlaybackOutcome outcome;
  SimTime now = 0;
  std::unique_ptr<PlaybackConsumer> consumer;
  const int64_t total_blocks = static_cast<int64_t>(strand.blocks.size());
  for (int64_t group_start = 0; group_start < total_blocks; group_start += p) {
    // One batch: up to p consecutive blocks, one per member, in parallel.
    std::vector<DiskArray::BatchRequest> batch;
    const int64_t group_end = std::min(total_blocks, group_start + p);
    for (int64_t b = group_start; b < group_end; ++b) {
      const PrimaryEntry& entry = strand.blocks[static_cast<size_t>(b)];
      batch.push_back(DiskArray::BatchRequest{array_->MemberForBlock(b), entry.sector,
                                              entry.sector_count});
    }
    // Bounded accumulation: wait for the device to drain before fetching
    // ahead of the cap (Section 3.3.2's switch-away discipline).
    if (consumer != nullptr) {
      while (consumer->BufferedAt(now) + static_cast<int64_t>(batch.size()) > cap) {
        const SimTime drain = consumer->NextDrainAfter(now);
        if (drain < 0) {
          break;
        }
        now = drain;
      }
    }
    Result<DiskArray::BatchOutcome> fetched = array_->ReadBatch(batch, nullptr);
    if (!fetched.ok()) {
      return fetched.status();  // malformed batch, not a member fault
    }
    now += fetched->completion_time;
    if (consumer == nullptr) {
      // Anti-jitter: playback starts once the first batch group is in.
      consumer = std::make_unique<PlaybackConsumer>(block_duration, now, 0);
    }
    for (int64_t b = group_start; b < group_end; ++b) {
      if (!fetched->per_request[static_cast<size_t>(b - group_start)].status.ok()) {
        // Degraded frame: the member faulted but the group's timeline is
        // intact, so readiness is still reported.
        ++outcome.blocks_failed;
      }
      consumer->BlockReady(now);
      ++outcome.blocks_done;
    }
  }
  outcome.violations = consumer->violations();
  outcome.total_tardiness = consumer->total_tardiness();
  outcome.max_buffered_blocks = consumer->max_buffered_blocks();
  outcome.completion_time = consumer->playback_end();
  return outcome;
}

}  // namespace vafs
