#include "src/msm/block_cache.h"

#include <algorithm>
#include <cassert>

namespace vafs {

std::vector<uint8_t>* PagePool::Acquire(int64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t want = static_cast<size_t>(bytes);
  for (size_t i = 0; i < free_.size(); ++i) {
    if (free_[i]->capacity() >= want) {
      std::unique_ptr<std::vector<uint8_t>> page = std::move(free_[i]);
      free_.erase(free_.begin() + static_cast<ptrdiff_t>(i));
      page->assign(want, 0);
      std::vector<uint8_t>* raw = page.get();
      live_.emplace(raw, std::move(page));
      ++recycled_;
      return raw;
    }
  }
  auto page = std::make_unique<std::vector<uint8_t>>(want, 0);
  std::vector<uint8_t>* raw = page.get();
  live_.emplace(raw, std::move(page));
  ++created_;
  return raw;
}

void PagePool::Release(std::vector<uint8_t>* page) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = live_.find(page);
  if (it == live_.end()) {
    assert(false && "released a page the pool does not own");
    return;
  }
  free_.push_back(std::move(it->second));
  live_.erase(it);
}

BlockCache::BlockCache(BlockCacheOptions options) : options_(options) {}

bool BlockCache::Lookup(int64_t sector, int64_t sectors) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (window_lookups_ >= std::max<int64_t>(options_.hit_window, 2)) {
    // Exponential decay: old rounds fade so a sharing collapse shows up
    // within one window instead of being averaged away.
    window_lookups_ /= 2;
    window_hits_ /= 2;
  }
  ++window_lookups_;
  auto it = entries_.find(sector);
  if (it == entries_.end() || it->second.sectors != sectors) {
    ++stats_.misses;
    return false;
  }
  lru_.erase(it->second.lru);
  lru_.push_back(sector);
  it->second.lru = std::prev(lru_.end());
  ++stats_.hits;
  ++window_hits_;
  return true;
}

bool BlockCache::Contains(int64_t sector, int64_t sectors) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(sector);
  return it != entries_.end() && it->second.sectors == sectors;
}

void BlockCache::Evict(std::map<int64_t, Entry>::iterator it) {
  stats_.resident_bytes -= it->second.bytes;
  --stats_.resident_entries;
  lru_.erase(it->second.lru);
  entries_.erase(it);
}

bool BlockCache::MakeRoom(int64_t bytes) {
  // Two passes over LRU order: plain entries first, interval-biased ones
  // only when nothing else is left — a biased entry's next hit is another
  // stream's scheduled read, the most valuable bytes in the cache.
  for (const bool allow_biased : {false, true}) {
    auto lru_it = lru_.begin();
    while (stats_.resident_bytes + bytes > options_.capacity_bytes && lru_it != lru_.end()) {
      auto entry = entries_.find(*lru_it);
      assert(entry != entries_.end());
      ++lru_it;  // advance before a potential erase
      if (entry->second.pins > 0 || (entry->second.biased && !allow_biased)) {
        continue;
      }
      Evict(entry);
      ++stats_.evictions;
    }
    if (stats_.resident_bytes + bytes <= options_.capacity_bytes) {
      return true;
    }
  }
  return false;
}

void BlockCache::Insert(int64_t sector, int64_t sectors, int64_t bytes, bool interval_biased) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled() || bytes > options_.capacity_bytes) {
    return;
  }
  auto existing = entries_.find(sector);
  if (existing != entries_.end()) {
    // Re-read of a resident extent: refresh recency and bias only.
    existing->second.biased = existing->second.biased || interval_biased;
    lru_.erase(existing->second.lru);
    lru_.push_back(sector);
    existing->second.lru = std::prev(lru_.end());
    return;
  }
  if (!MakeRoom(bytes)) {
    return;  // everything resident is pinned; drop the insert
  }
  Entry entry;
  entry.sector = sector;
  entry.sectors = sectors;
  entry.bytes = bytes;
  entry.biased = interval_biased;
  lru_.push_back(sector);
  entry.lru = std::prev(lru_.end());
  entries_.emplace(sector, entry);
  stats_.resident_bytes += bytes;
  ++stats_.resident_entries;
  ++stats_.insertions;
}

bool BlockCache::Pin(int64_t sector, int64_t sectors) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(sector);
  if (it == entries_.end() || it->second.sectors != sectors) {
    return false;
  }
  if (it->second.pins == 0) {
    ++stats_.pinned_entries;
  }
  ++it->second.pins;
  return true;
}

void BlockCache::Unpin(int64_t sector, int64_t sectors) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(sector);
  if (it == entries_.end() || it->second.sectors != sectors || it->second.pins == 0) {
    return;
  }
  if (--it->second.pins == 0) {
    --stats_.pinned_entries;
  }
}

int64_t BlockCache::InvalidateRange(int64_t sector, int64_t sectors) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int64_t end = sector + sectors;
  const int64_t resident_before = stats_.resident_entries;
  int64_t dropped = 0;
  // Entries are keyed by start sector; one starting before `sector` can
  // still overlap, so back up one position before scanning forward.
  auto it = entries_.lower_bound(sector);
  if (it != entries_.begin()) {
    --it;
  }
  while (it != entries_.end() && it->first < end) {
    if (it->first + it->second.sectors > sector) {
      if (it->second.pins > 0) {
        --stats_.pinned_entries;  // invalidation outranks pinning
      }
      Evict(it++);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.invalidated_entries += dropped;
  if (dropped > 0 && resident_before > 0) {
    // The window's hits were earned against entries that may just have
    // vanished: scale them down by the surviving fraction so the rate
    // reflects what is still resident instead of a stale storm-ago view.
    window_hits_ = (window_hits_ * stats_.resident_entries) / resident_before;
  }
  return dropped;
}

void BlockCache::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.invalidated_entries += stats_.resident_entries;
  stats_.resident_bytes = 0;
  stats_.resident_entries = 0;
  stats_.pinned_entries = 0;
  entries_.clear();
  lru_.clear();
  // Nothing the window measured survives; the rate restarts from zero.
  window_hits_ = 0;
  window_lookups_ = 0;
}

double BlockCache::RecentHitRate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (window_lookups_ == 0) {
    return 0.0;
  }
  return static_cast<double>(window_hits_) / static_cast<double>(window_lookups_);
}

}  // namespace vafs
