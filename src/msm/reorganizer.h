// Storage reorganization (paper Section 6.2).
//
// "Constrained scattering of blocks of a media strand can be difficult to
// achieve when the disk is densely utilized. When it becomes impossible to
// place new media strands in such a way that their scattering bounds are
// satisfied, the storage of existing media strands on the disk may have to
// be reorganized. [...] we are studying techniques by which a small number
// of anomalies in scattering can be smoothed out."
//
// Two tools, both preserving strand immutability by producing fresh
// strands (the rope layer rebinds references and garbage-collects the
// originals):
//   - AuditStrand measures a strand's realized scattering against its
//     contract and counts anomalous gaps;
//   - RelocateStrand rewrites a strand into a new constrained placement,
//     optionally packed toward a target region (the compaction primitive).

#ifndef VAFS_SRC_MSM_REORGANIZER_H_
#define VAFS_SRC_MSM_REORGANIZER_H_

#include <cstdint>

#include "src/msm/strand_store.h"
#include "src/util/result.h"

namespace vafs {

struct StrandHealth {
  StrandId id = kNullStrand;
  int64_t data_blocks = 0;       // silence excluded
  double avg_gap_sec = 0.0;
  double max_gap_sec = 0.0;
  double bound_sec = 0.0;        // the strand's scattering contract
  int64_t anomalous_gaps = 0;    // gaps exceeding the contract

  bool NeedsRepair() const { return anomalous_gaps > 0; }
};

// Measures the realized inter-block gaps of a strand against its
// scattering contract, or against `bound_override_sec` when >= 0 (e.g.,
// auditing existing strands against bounds recomputed for new hardware).
Result<StrandHealth> AuditStrand(StrandStore* store, StrandId id,
                                 double bound_override_sec = -1.0);

struct RelocationOutcome {
  StrandId new_strand = kNullStrand;
  int64_t blocks_moved = 0;
  SimDuration copy_time = 0;
};

// Rewrites `id` into a fresh placement honouring its original contract
// (or `new_bound_sec` when >= 0, adopting a recomputed bound). With
// pack_hint_sector >= 0 the first block is allocated at/after that
// position (compaction packs strands one after another). The original
// strand is left in place; callers rebind references, then delete it.
Result<RelocationOutcome> RelocateStrand(StrandStore* store, StrandId id,
                                         int64_t pack_hint_sector = -1,
                                         double new_bound_sec = -1.0);

}  // namespace vafs

#endif  // VAFS_SRC_MSM_REORGANIZER_H_
