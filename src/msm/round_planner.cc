#include "src/msm/round_planner.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <tuple>
#include <utility>

namespace vafs {

namespace {

// C-SCAN key: cylinders at or past the arm sweep first in ascending
// order; the rest wait for the wrap and sweep ascending again.
std::pair<int, int64_t> ScanKey(int64_t cylinder, int64_t head_cylinder) {
  return {cylinder >= head_cylinder ? 0 : 1, cylinder};
}

int64_t HeadFor(const std::vector<int64_t>& head_cylinders, int member) {
  return member < static_cast<int>(head_cylinders.size())
             ? head_cylinders[static_cast<size_t>(member)]
             : 0;
}

bool SameGeometry(const PlanCandidate& a, const PlanCandidate& b) {
  return a.ordinal == b.ordinal && a.silence == b.silence && a.cache_hit == b.cache_hit &&
         a.sector == b.sector && a.sectors == b.sectors;
}

}  // namespace

RoundPlan BuildRoundPlan(const DiskModel& model, const std::vector<int64_t>& head_cylinders,
                         int array_members, const std::vector<PlanInput>& inputs) {
  RoundPlan plan;
  BuildRoundPlanInto(model, head_cylinders, array_members, inputs, &plan);
  return plan;
}

void BuildRoundPlanInto(const DiskModel& model, const std::vector<int64_t>& head_cylinders,
                        int array_members, const std::vector<PlanInput>& inputs, RoundPlan* out) {
  out->transfers.clear();
  out->riders.clear();
  out->data_blocks = 0;
  out->cache_hits = 0;
  out->read_transfers = 0;
  out->coalesced_blocks = 0;
  out->deduped_blocks = 0;
  const int members = std::max(array_members, 1);

  // Build-phase transfer: geometry plus its own rider list (the flat arena
  // is only filled once the dispatch order is final).
  struct Build {
    PlannedTransfer transfer;
    std::vector<PlannedBlock> riders;
  };

  // Per-request coalescing: a run of consecutive non-silence candidates
  // whose extents abut on the same member becomes one transfer. Silence
  // breaks the run even when the flanking extents are contiguous.
  std::vector<Build> reads;
  int32_t slot = 0;
  for (const PlanInput& input : inputs) {
    Build* run = nullptr;
    bool run_broken = true;
    for (const PlanCandidate& candidate : input.blocks) {
      const int32_t this_slot = slot++;
      if (candidate.silence) {
        run_broken = true;
        continue;
      }
      ++out->data_blocks;
      if (candidate.cache_hit) {
        ++out->cache_hits;
        run_broken = true;  // the round skips this extent; the run ends
        continue;
      }
      const int member = members > 1 ? static_cast<int>(candidate.ordinal % members) : 0;
      PlannedBlock block{input.request, candidate.ordinal, candidate.sector, candidate.sectors,
                         this_slot};
      if (!run_broken && run != nullptr && run->transfer.member == member &&
          run->transfer.start_sector + run->transfer.sectors == candidate.sector) {
        run->transfer.sectors += candidate.sectors;
        run->riders.push_back(block);
        ++out->coalesced_blocks;
        continue;
      }
      Build build;
      build.transfer.start_sector = candidate.sector;
      build.transfer.sectors = candidate.sectors;
      build.transfer.member = member;
      build.riders.push_back(block);
      reads.push_back(std::move(build));
      run = &reads.back();
      run_broken = false;
    }
    if (input.append_blocks > 0) {
      Build append;
      append.transfer.is_append = true;
      append.transfer.append_request = input.request;
      append.transfer.append_blocks = input.append_blocks;
      append.transfer.start_sector = std::max<int64_t>(input.append_position_sector, 0);
      append.transfer.member = 0;  // appends go to the primary spindle
      reads.push_back(std::move(append));
    }
  }

  // Dedup: identical extents wanted by several requests (lockstep viewers
  // of one strand) collapse into one transfer carrying all riders.
  std::map<std::pair<int64_t, int64_t>, size_t> by_extent;
  std::vector<Build> unique;
  for (Build& build : reads) {
    if (build.transfer.is_append) {
      unique.push_back(std::move(build));
      continue;
    }
    const auto key = std::make_pair(build.transfer.start_sector, build.transfer.sectors);
    auto found = by_extent.find(key);
    if (found != by_extent.end()) {
      Build& host = unique[found->second];
      out->deduped_blocks += static_cast<int64_t>(build.riders.size());
      host.riders.insert(host.riders.end(), build.riders.begin(), build.riders.end());
      continue;
    }
    by_extent.emplace(key, unique.size());
    unique.push_back(std::move(build));
  }

  // C-SCAN per member queue, from that member's current arm cylinder.
  std::stable_sort(unique.begin(), unique.end(), [&](const Build& a, const Build& b) {
    if (a.transfer.member != b.transfer.member) {
      return a.transfer.member < b.transfer.member;
    }
    const int64_t head = HeadFor(head_cylinders, a.transfer.member);
    const auto ka = ScanKey(model.SectorToCylinder(a.transfer.start_sector), head);
    const auto kb = ScanKey(model.SectorToCylinder(b.transfer.start_sector), head);
    if (ka != kb) {
      return ka < kb;
    }
    return a.transfer.start_sector < b.transfer.start_sector;
  });

  out->transfers.reserve(unique.size());
  for (Build& build : unique) {
    PlannedTransfer transfer = build.transfer;
    transfer.rider_begin = static_cast<uint32_t>(out->riders.size());
    transfer.rider_count = static_cast<uint32_t>(build.riders.size());
    out->riders.insert(out->riders.end(), build.riders.begin(), build.riders.end());
    if (!transfer.is_append) {
      ++out->read_transfers;
    }
    out->transfers.push_back(transfer);
  }
}

void IncrementalRoundPlanner::RebuildInput(const PlanInput& input, int members,
                                           CachedInput* cached) {
  cached->signature.assign(input.blocks.begin(), input.blocks.end());
  cached->members = members;
  cached->runs.clear();
  cached->riders.clear();
  cached->data_blocks = 0;
  cached->cache_hits = 0;
  cached->coalesced_blocks = 0;

  CachedRun* run = nullptr;
  bool run_broken = true;
  int32_t candidate_index = -1;
  for (const PlanCandidate& candidate : input.blocks) {
    ++candidate_index;
    if (candidate.silence) {
      run_broken = true;
      continue;
    }
    ++cached->data_blocks;
    if (candidate.cache_hit) {
      ++cached->cache_hits;
      run_broken = true;
      continue;
    }
    const int member = members > 1 ? static_cast<int>(candidate.ordinal % members) : 0;
    // Slot holds the candidate index within this input; Plan() rebases it
    // to the round-global slot when filling the arena.
    PlannedBlock block{input.request, candidate.ordinal, candidate.sector, candidate.sectors,
                      candidate_index};
    if (!run_broken && run != nullptr && run->member == member &&
        run->start_sector + run->sectors == candidate.sector) {
      run->sectors += candidate.sectors;
      cached->riders.push_back(block);
      ++run->rider_count;
      ++cached->coalesced_blocks;
      continue;
    }
    CachedRun next;
    next.start_sector = candidate.sector;
    next.sectors = candidate.sectors;
    next.member = member;
    next.rider_begin = static_cast<uint32_t>(cached->riders.size());
    next.rider_count = 1;
    cached->riders.push_back(block);
    cached->runs.push_back(next);
    run = &cached->runs.back();
    run_broken = false;
  }
}

const RoundPlan& IncrementalRoundPlanner::Plan(const DiskModel& model,
                                               const std::vector<int64_t>& head_cylinders,
                                               int array_members,
                                               const std::vector<PlanInput>& inputs) {
  const int members = std::max(array_members, 1);
  ++stats_.rounds;
  plan_.transfers.clear();
  plan_.riders.clear();
  plan_.data_blocks = 0;
  plan_.cache_hits = 0;
  plan_.read_transfers = 0;
  plan_.coalesced_blocks = 0;
  plan_.deduped_blocks = 0;
  groups_.clear();
  refs_.clear();
  group_map_.clear();

  // Phase 1: per-input runs (cached) grouped by extent in encounter order.
  int64_t slot_base = 0;
  for (const PlanInput& input : inputs) {
    CachedInput& cached = cache_[input.request];
    ++stats_.inputs_seen;
    const bool clean = cached.members == members &&
                       cached.signature.size() == input.blocks.size() &&
                       std::equal(cached.signature.begin(), cached.signature.end(),
                                  input.blocks.begin(), SameGeometry);
    if (clean) {
      ++stats_.inputs_reused;
    } else {
      RebuildInput(input, members, &cached);
    }
    plan_.data_blocks += cached.data_blocks;
    plan_.cache_hits += cached.cache_hits;
    plan_.coalesced_blocks += cached.coalesced_blocks;

    for (int32_t run_index = 0; run_index < static_cast<int32_t>(cached.runs.size());
         ++run_index) {
      const CachedRun& run = cached.runs[static_cast<size_t>(run_index)];
      const ExtentKey key{run.start_sector, run.sectors};
      auto [it, inserted] = group_map_.try_emplace(key, static_cast<int32_t>(groups_.size()));
      if (inserted) {
        Group group;
        group.start_sector = run.start_sector;
        group.sectors = run.sectors;
        group.member = run.member;
        group.cylinder = model.SectorToCylinder(run.start_sector);
        group.seq = static_cast<int32_t>(groups_.size());
        groups_.push_back(group);
      } else {
        plan_.deduped_blocks += run.rider_count;
      }
      Group& group = groups_[static_cast<size_t>(it->second)];
      const int32_t ref_index = static_cast<int32_t>(refs_.size());
      refs_.push_back(GroupRef{&cached, run_index, slot_base, -1});
      if (group.last_ref >= 0) {
        refs_[static_cast<size_t>(group.last_ref)].next = ref_index;
      } else {
        group.first_ref = ref_index;
      }
      group.last_ref = ref_index;
      group.rider_total += run.rider_count;
    }
    if (input.append_blocks > 0) {
      Group group;
      group.is_append = true;
      group.append_request = input.request;
      group.append_blocks = input.append_blocks;
      group.start_sector = std::max<int64_t>(input.append_position_sector, 0);
      group.member = 0;
      group.cylinder = model.SectorToCylinder(group.start_sector);
      group.seq = static_cast<int32_t>(groups_.size());
      groups_.push_back(group);
    }
    slot_base += static_cast<int64_t>(input.blocks.size());
  }
  stats_.groups_seen += static_cast<int64_t>(groups_.size());

  // Phase 2: order groups by the head-independent total key
  //   (member, start_sector, seq)
  // reusing the previous round's order for surviving read extents. The
  // clean sequence (survivors, in last round's relative order) is sorted by
  // construction unless two surviving extents share (member, start_sector)
  // — different lengths — in which case their tie-break seq may have
  // flipped; that rare case falls back to a full sort. Appends are always
  // "dirty": their position moves with the writer every round.
  const auto key_of = [this](int32_t index) {
    const Group& group = groups_[static_cast<size_t>(index)];
    return std::make_tuple(group.member, group.start_sector, group.seq);
  };
  group_clean_.assign(groups_.size(), 0);
  clean_order_.clear();
  for (const OrderedIdentity& identity : last_order_) {
    auto it = group_map_.find(ExtentKey{identity.start_sector, identity.sectors});
    if (it == group_map_.end()) {
      continue;
    }
    const Group& group = groups_[static_cast<size_t>(it->second)];
    if (group.member != identity.member || group_clean_[static_cast<size_t>(it->second)]) {
      continue;
    }
    group_clean_[static_cast<size_t>(it->second)] = 1;
    clean_order_.push_back(it->second);
  }
  bool clean_sorted = true;
  for (size_t i = 1; i < clean_order_.size(); ++i) {
    if (!(key_of(clean_order_[i - 1]) < key_of(clean_order_[i]))) {
      clean_sorted = false;
      break;
    }
  }
  dirty_order_.clear();
  for (int32_t index = 0; index < static_cast<int32_t>(groups_.size()); ++index) {
    if (!group_clean_[static_cast<size_t>(index)]) {
      dirty_order_.push_back(index);
    }
  }
  merged_order_.clear();
  if (!clean_sorted) {
    ++stats_.full_sort_fallbacks;
    stats_.groups_resorted += static_cast<int64_t>(groups_.size());
    merged_order_.resize(groups_.size());
    for (int32_t index = 0; index < static_cast<int32_t>(groups_.size()); ++index) {
      merged_order_[static_cast<size_t>(index)] = index;
    }
    std::sort(merged_order_.begin(), merged_order_.end(),
              [&](int32_t a, int32_t b) { return key_of(a) < key_of(b); });
  } else {
    stats_.groups_resorted += static_cast<int64_t>(dirty_order_.size());
    std::sort(dirty_order_.begin(), dirty_order_.end(),
              [&](int32_t a, int32_t b) { return key_of(a) < key_of(b); });
    merged_order_.reserve(groups_.size());
    size_t ci = 0;
    size_t di = 0;
    while (ci < clean_order_.size() && di < dirty_order_.size()) {
      if (key_of(clean_order_[ci]) < key_of(dirty_order_[di])) {
        merged_order_.push_back(clean_order_[ci++]);
      } else {
        merged_order_.push_back(dirty_order_[di++]);
      }
    }
    merged_order_.insert(merged_order_.end(), clean_order_.begin() + static_cast<ptrdiff_t>(ci),
                         clean_order_.end());
    merged_order_.insert(merged_order_.end(), dirty_order_.begin() + static_cast<ptrdiff_t>(di),
                         dirty_order_.end());
  }

  // Remember this round's merged read order for the next round.
  next_order_.clear();
  for (int32_t index : merged_order_) {
    const Group& group = groups_[static_cast<size_t>(index)];
    if (!group.is_append) {
      next_order_.push_back(OrderedIdentity{group.member, group.start_sector, group.sectors});
    }
  }
  last_order_.swap(next_order_);

  // Phase 3: per-member C-SCAN rotation. Within a member the merged order
  // is ascending in start_sector, hence nondecreasing in cylinder; the
  // elevator dispatches [first cylinder >= arm .. end) then wraps.
  const auto emit = [&](int32_t index) {
    const Group& group = groups_[static_cast<size_t>(index)];
    PlannedTransfer transfer;
    transfer.is_append = group.is_append;
    transfer.start_sector = group.start_sector;
    transfer.sectors = group.is_append ? 0 : group.sectors;
    transfer.member = group.member;
    transfer.append_request = group.append_request;
    transfer.append_blocks = group.append_blocks;
    transfer.rider_begin = static_cast<uint32_t>(plan_.riders.size());
    for (int32_t ref_index = group.first_ref; ref_index >= 0;
         ref_index = refs_[static_cast<size_t>(ref_index)].next) {
      const GroupRef& ref = refs_[static_cast<size_t>(ref_index)];
      const CachedRun& run = ref.input->runs[static_cast<size_t>(ref.run)];
      for (uint32_t r = 0; r < run.rider_count; ++r) {
        PlannedBlock block = ref.input->riders[run.rider_begin + r];
        block.slot = static_cast<int32_t>(ref.slot_base + block.slot);
        plan_.riders.push_back(block);
      }
    }
    transfer.rider_count = static_cast<uint32_t>(plan_.riders.size()) - transfer.rider_begin;
    if (!transfer.is_append) {
      ++plan_.read_transfers;
    }
    plan_.transfers.push_back(transfer);
  };

  plan_.transfers.reserve(merged_order_.size());
  size_t segment_begin = 0;
  while (segment_begin < merged_order_.size()) {
    const int member = groups_[static_cast<size_t>(merged_order_[segment_begin])].member;
    size_t segment_end = segment_begin;
    while (segment_end < merged_order_.size() &&
           groups_[static_cast<size_t>(merged_order_[segment_end])].member == member) {
      ++segment_end;
    }
    const int64_t head = HeadFor(head_cylinders, member);
    const auto begin = merged_order_.begin() + static_cast<ptrdiff_t>(segment_begin);
    const auto end = merged_order_.begin() + static_cast<ptrdiff_t>(segment_end);
    const auto pivot = std::partition_point(begin, end, [&](int32_t index) {
      return groups_[static_cast<size_t>(index)].cylinder < head;
    });
    for (auto it = pivot; it != end; ++it) {
      emit(*it);
    }
    for (auto it = begin; it != pivot; ++it) {
      emit(*it);
    }
    segment_begin = segment_end;
  }
  return plan_;
}

void IncrementalRoundPlanner::Forget(uint64_t request) { cache_.erase(request); }

void IncrementalRoundPlanner::Clear() {
  cache_.clear();
  last_order_.clear();
  plan_ = RoundPlan{};
}

}  // namespace vafs
