#include "src/msm/round_planner.h"

#include <algorithm>
#include <map>
#include <utility>

namespace vafs {

namespace {

// C-SCAN key: cylinders at or past the arm sweep first in ascending
// order; the rest wait for the wrap and sweep ascending again.
std::pair<int, int64_t> ScanKey(int64_t cylinder, int64_t head_cylinder) {
  return {cylinder >= head_cylinder ? 0 : 1, cylinder};
}

}  // namespace

RoundPlan BuildRoundPlan(const DiskModel& model, const std::vector<int64_t>& head_cylinders,
                         int array_members, const std::vector<PlanInput>& inputs) {
  RoundPlan plan;
  const int members = std::max(array_members, 1);

  // Per-request coalescing: a run of consecutive non-silence candidates
  // whose extents abut on the same member becomes one transfer. Silence
  // breaks the run even when the flanking extents are contiguous.
  std::vector<PlannedTransfer> reads;
  for (const PlanInput& input : inputs) {
    PlannedTransfer* run = nullptr;
    bool run_broken = true;
    for (const PlanCandidate& candidate : input.blocks) {
      if (candidate.silence) {
        run_broken = true;
        continue;
      }
      ++plan.data_blocks;
      if (candidate.cache_hit) {
        ++plan.cache_hits;
        run_broken = true;  // the round skips this extent; the run ends
        continue;
      }
      const int member = members > 1 ? static_cast<int>(candidate.ordinal % members) : 0;
      PlannedBlock block{input.request, candidate.ordinal, candidate.sector, candidate.sectors};
      if (!run_broken && run != nullptr && run->member == member &&
          run->start_sector + run->sectors == candidate.sector) {
        run->sectors += candidate.sectors;
        run->blocks.push_back(block);
        ++plan.coalesced_blocks;
        continue;
      }
      PlannedTransfer transfer;
      transfer.start_sector = candidate.sector;
      transfer.sectors = candidate.sectors;
      transfer.member = member;
      transfer.blocks.push_back(block);
      reads.push_back(std::move(transfer));
      run = &reads.back();
      run_broken = false;
    }
    if (input.append_blocks > 0) {
      PlannedTransfer append;
      append.is_append = true;
      append.append_request = input.request;
      append.append_blocks = input.append_blocks;
      append.start_sector = std::max<int64_t>(input.append_position_sector, 0);
      append.member = 0;  // appends go to the primary spindle
      reads.push_back(std::move(append));
    }
  }

  // Dedup: identical extents wanted by several requests (lockstep viewers
  // of one strand) collapse into one transfer carrying all riders.
  std::map<std::pair<int64_t, int64_t>, size_t> by_extent;
  std::vector<PlannedTransfer> unique;
  for (PlannedTransfer& transfer : reads) {
    if (transfer.is_append) {
      unique.push_back(std::move(transfer));
      continue;
    }
    const auto key = std::make_pair(transfer.start_sector, transfer.sectors);
    auto found = by_extent.find(key);
    if (found != by_extent.end()) {
      PlannedTransfer& host = unique[found->second];
      plan.deduped_blocks += static_cast<int64_t>(transfer.blocks.size());
      host.blocks.insert(host.blocks.end(), transfer.blocks.begin(), transfer.blocks.end());
      continue;
    }
    by_extent.emplace(key, unique.size());
    unique.push_back(std::move(transfer));
  }

  // C-SCAN per member queue, from that member's current arm cylinder.
  std::stable_sort(unique.begin(), unique.end(),
                   [&](const PlannedTransfer& a, const PlannedTransfer& b) {
                     if (a.member != b.member) {
                       return a.member < b.member;
                     }
                     const int64_t head =
                         a.member < static_cast<int>(head_cylinders.size())
                             ? head_cylinders[static_cast<size_t>(a.member)]
                             : 0;
                     const auto ka = ScanKey(model.SectorToCylinder(a.start_sector), head);
                     const auto kb = ScanKey(model.SectorToCylinder(b.start_sector), head);
                     if (ka != kb) {
                       return ka < kb;
                     }
                     return a.start_sector < b.start_sector;
                   });
  plan.transfers = std::move(unique);
  for (const PlannedTransfer& transfer : plan.transfers) {
    if (!transfer.is_append) {
      ++plan.read_transfers;
    }
  }
  return plan;
}

}  // namespace vafs
