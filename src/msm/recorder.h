// Untimed recording helpers: pull media from a synthetic source, pack it
// into blocks at the strand's granularity, run silence elimination for
// audio, and write the strand through a StrandWriter.
//
// These helpers perform the *data path* of RECORD without real-time
// pacing; the service scheduler (service_scheduler.h) provides the timed,
// admission-controlled variant. Ropes and editing tests use these to
// materialize strands quickly.

#ifndef VAFS_SRC_MSM_RECORDER_H_
#define VAFS_SRC_MSM_RECORDER_H_

#include <cstdint>

#include "src/core/continuity.h"
#include "src/media/silence.h"
#include "src/media/sources.h"
#include "src/media/vbr_source.h"
#include "src/msm/strand_store.h"
#include "src/util/result.h"

namespace vafs {

struct RecordingResult {
  StrandId strand = kNullStrand;
  int64_t blocks_total = 0;
  int64_t silence_blocks = 0;
  int64_t units_recorded = 0;
  double avg_gap_sec = 0.0;  // realized scattering
  double max_gap_sec = 0.0;
  // Per-block payload sizes in bits (filled by the VBR recorder only;
  // constant-rate recordings leave it empty).
  std::vector<int64_t> block_bits;
};

// Records `duration_sec` of video from `source` into a new strand.
Result<RecordingResult> RecordVideo(StrandStore* store, VideoSource* source,
                                    const StrandPlacement& placement, double duration_sec);

// Records `duration_sec` of variable-rate compressed video: blocks carry
// q frames each but their byte sizes vary with the encoder's output
// (Section 6.2). The result's block_bits holds the realized sizes for
// read-ahead analysis.
Result<RecordingResult> RecordVbrVideo(StrandStore* store, VbrVideoSource* source,
                                       const StrandPlacement& placement, double duration_sec);

// Records `duration_sec` of audio with silence elimination: blocks whose
// average energy falls below the detector's threshold store no data and
// appear as NULL (silence) primary entries.
Result<RecordingResult> RecordAudio(StrandStore* store, AudioSource* source,
                                    const SilenceDetector& detector,
                                    const StrandPlacement& placement, double duration_sec);

}  // namespace vafs

#endif  // VAFS_SRC_MSM_RECORDER_H_
