// Striped strands over a multi-head array: the concurrent retrieval
// architecture (Section 3.1, Figure 3) made operational.
//
// Block i of a striped strand lives on array member i mod p. Retrieval
// fetches groups of p consecutive blocks as one parallel batch, so the
// continuity requirement relaxes to Eq. 3:
//
//   l_ds + q*s/R_dt <= (p - 1) * q/R
//
// with R_dt the *member* transfer rate — this is how a stream whose bit
// rate exceeds any single disk (the paper's HDTV argument) becomes
// servable. Placement is constrained per member: on its member, block i's
// predecessor is block i-p, and the window derives from Eq. 3's budget.

#ifndef VAFS_SRC_MSM_STRIPED_H_
#define VAFS_SRC_MSM_STRIPED_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/continuity.h"
#include "src/disk/disk_array.h"
#include "src/layout/allocator.h"
#include "src/layout/strand_index.h"
#include "src/media/devices.h"
#include "src/media/media.h"
#include "src/util/result.h"

namespace vafs {

// A strand striped across the members of one array.
struct StripedStrand {
  MediaProfile profile;
  int64_t granularity = 1;         // q, units per block
  int64_t unit_count = 0;
  // blocks[i] is the extent on member (i mod p).
  std::vector<PrimaryEntry> blocks;
};

class StripedStore {
 public:
  // Does not own `array`; it must outlive the store.
  explicit StripedStore(DiskArray* array);

  DiskArray& array() { return *array_; }
  int members() const { return array_->members(); }

  // Records `duration_sec` of media striped across the members under the
  // given placement (granularity + per-member scattering bound, from
  // ContinuityModel::DerivePlacement with the kConcurrent architecture
  // and per-member storage timings). Payload is zero-filled (the striped
  // path is a timing substrate; content-bearing strands live in
  // StrandStore).
  Result<StripedStrand> Record(const MediaProfile& media, const StrandPlacement& placement,
                               double duration_sec);

  // Frees a striped strand's blocks.
  Status Free(const StripedStrand& strand);

  struct PlaybackOutcome {
    int64_t blocks_done = 0;
    int64_t violations = 0;
    SimDuration total_tardiness = 0;
    int64_t max_buffered_blocks = 0;
    SimTime completion_time = 0;
    // Blocks whose member faulted mid-batch: the batch still completes (the
    // other members ran in parallel regardless) and playback degrades for
    // just those blocks instead of aborting the stream.
    int64_t blocks_failed = 0;
  };

  // Plays the strand back with batches of p parallel block fetches,
  // checking every block against its playback deadline. `buffer_cap`
  // bounds device-side accumulation (0 = 2p, double buffering of one
  // batch group).
  Result<PlaybackOutcome> Play(const StripedStrand& strand, int64_t buffer_cap = 0);

 private:
  DiskArray* array_;
  std::vector<std::unique_ptr<ConstrainedAllocator>> allocators_;
};

}  // namespace vafs

#endif  // VAFS_SRC_MSM_STRIPED_H_
