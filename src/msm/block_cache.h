// Shared block cache for the round I/O planner.
//
// Concurrent viewers of one strand read the same physical blocks; the
// paper's admission math charges every viewer a full disk transfer, but a
// block already resident in memory costs no mechanism at all. The cache
// sits between the service scheduler and the disk, keyed by physical
// extent (start sector + length): the planner probes it while building a
// round's transfer list and every block that hits is served from memory,
// shrinking the round and freeing Eq. 11 slack.
//
// Replacement is LRU with an interval-caching bias (PAPERS.md, scalable
// VoD): an entry some *other* active stream will need soon — the interval
// between a leading and a trailing viewer of the same strand — is evicted
// last, because its next hit is scheduled, not speculative. Read-ahead
// pages fetched during a stream's anti-jitter prelude can be pinned so
// eviction cannot undo the startup guarantee before playback begins.
//
// Coherence: the cache indexes platter contents, so every path that
// rewrites sectors must invalidate — StrandWriter appends (including
// scattering repair and relocation, which write through fresh writers onto
// possibly reused extents), strand deletion (the freed extents will be
// reallocated), and recovery (the in-memory image is rebuilt from disk).
//
// The embedded PagePool recycles payload-sized scratch buffers so the
// per-round service loop never allocates per block.

#ifndef VAFS_SRC_MSM_BLOCK_CACHE_H_
#define VAFS_SRC_MSM_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace vafs {

// Recycles payload buffers between rounds. Acquired pages are zero-filled
// (the simulated capture path records zero payloads), sized to whole
// blocks, and returned to the pool on release instead of freed. Acquire
// and Release are thread-safe so wall-clock worker tasks (DESIGN.md
// section 12) can borrow scratch pages concurrently; the buffers handed
// out are exclusively the caller's until released.
class PagePool {
 public:
  // A zeroed buffer of exactly `bytes` bytes. Reuses a pooled page when
  // one of sufficient capacity exists.
  std::vector<uint8_t>* Acquire(int64_t bytes);
  void Release(std::vector<uint8_t>* page);

  int64_t pages_pooled() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int64_t>(free_.size());
  }
  // Pages handed out and not yet released: a non-zero steady state between
  // rounds is a leak (surfaces in telemetry as page_pool.outstanding).
  int64_t pages_outstanding() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int64_t>(live_.size());
  }
  // Lifetime counters: fresh heap allocations vs. recycled acquisitions.
  int64_t pages_created() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return created_;
  }
  int64_t pages_recycled() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return recycled_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<std::vector<uint8_t>>> free_;
  // Keyed by buffer address so Release is O(1) even with thousands of
  // pages in flight during a scale round.
  std::unordered_map<std::vector<uint8_t>*, std::unique_ptr<std::vector<uint8_t>>> live_;
  int64_t created_ = 0;
  int64_t recycled_ = 0;
};

struct BlockCacheOptions {
  // Total bytes of block payload the cache may hold; 0 disables caching
  // (lookups always miss, inserts are dropped).
  int64_t capacity_bytes = 0;
  // Window of the recent-hit-rate estimate, in lookups. The estimate
  // decays exponentially at this granularity so a collapse (the sharing
  // stream stopped) surfaces within one window.
  int64_t hit_window = 256;
};

struct BlockCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
  int64_t invalidated_entries = 0;
  int64_t resident_bytes = 0;
  int64_t resident_entries = 0;
  int64_t pinned_entries = 0;
};

// Thread-safety: every mutating or probing method takes an internal
// mutex, so planner probes and worker-task insertions may interleave.
// stats() returns a reference into the guarded state — read it only from
// the coordinating thread between waves (after the pool's join barrier),
// which is where the scheduler and exporters already sample it.
class BlockCache {
 public:
  explicit BlockCache(BlockCacheOptions options);

  bool enabled() const { return options_.capacity_bytes > 0; }

  // Probes for the exact extent, counting a hit or miss and refreshing
  // LRU order on hit.
  bool Lookup(int64_t sector, int64_t sectors);

  // Probe without touching stats or recency (admission-time coverage
  // estimates must not distort the measured hit rate).
  bool Contains(int64_t sector, int64_t sectors) const;

  // Registers an extent just read from disk. `interval_biased` marks it as
  // scheduled for another active stream (evicted last). Entries larger
  // than the whole cache are dropped.
  void Insert(int64_t sector, int64_t sectors, int64_t bytes, bool interval_biased);

  // Pins / unpins an extent (read-ahead pages). Pinned entries are never
  // evicted; they still invalidate. Pin counts nest. Pin returns false when
  // the extent is not resident (e.g. the insert was dropped because
  // everything else was pinned) — callers must only record a pin they
  // actually took, or a later Unpin releases somebody else's pin.
  bool Pin(int64_t sector, int64_t sectors);
  void Unpin(int64_t sector, int64_t sectors);

  // Drops every entry overlapping [sector, sector + sectors): the platter
  // contents changed under the cache. Both also decay the recent-hit-rate
  // window in proportion to what was dropped — the evidence behind those
  // hits is gone, and cache-aware admission must not admit on it.
  int64_t InvalidateRange(int64_t sector, int64_t sectors);
  void InvalidateAll();

  // Recent hit rate in [0, 1] over the configured window; 0 before any
  // lookup lands, and reset by invalidation storms (see above).
  double RecentHitRate() const;

  const BlockCacheStats& stats() const { return stats_; }
  PagePool& page_pool() { return pool_; }

 private:
  struct Entry {
    int64_t sector = 0;
    int64_t sectors = 0;
    int64_t bytes = 0;
    int64_t pins = 0;
    bool biased = false;
    std::list<int64_t>::iterator lru;  // position in lru_ (keyed by sector)
  };

  // Both run under mutex_ (called from the locked public methods only).
  void Evict(std::map<int64_t, Entry>::iterator it);
  // Frees space until `bytes` more fit, honouring pins and bias. Returns
  // false when pinned entries make that impossible.
  bool MakeRoom(int64_t bytes);

  mutable std::mutex mutex_;
  BlockCacheOptions options_;
  BlockCacheStats stats_;
  std::map<int64_t, Entry> entries_;  // by start sector
  std::list<int64_t> lru_;            // front = least recently used
  int64_t window_lookups_ = 0;
  int64_t window_hits_ = 0;
  PagePool pool_;
};

}  // namespace vafs

#endif  // VAFS_SRC_MSM_BLOCK_CACHE_H_
