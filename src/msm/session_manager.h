// Stream-merging session layer: batching, patching and piggybacking.
//
// The paper's admission math (Eq. 17) charges every viewer a full disk
// stream, but video-on-demand audiences are not independent: a popular
// title draws many viewers close together in time. The session layer sits
// above the ServiceScheduler and turns that correlation into admitted
// viewers that cost no extra disk:
//
//  - BATCHING: viewers of one title arriving inside a configurable window
//    of its leader attach as riders on the leader's physical stream. A
//    rider consumes the same block deliveries; it holds no request, no
//    Eq. 17 slot, and no disk time. The leader's recent trail of extents
//    is pinned in the shared block cache so a rider a few blocks behind
//    still finds its opening blocks in memory.
//  - PATCHING: a viewer arriving after the window but within
//    max_patch_blocks of the leader opens a short catch-up stream that
//    reads only the gap [0, gap) — a regular, admission-checked, short-
//    lived Eq. 17 tenant. While it catches up, the rider banks the
//    leader's ongoing deliveries in its buffer runway (the Section 3
//    buffering math bounds that runway by min(gap + margin, blocks the
//    leader has left)); when the patch completes, the rider merges onto
//    the leader and the patch's slot is released.
//  - PIGGYBACKING of near-adjacent playback points needs no code here: the
//    round planner already dedups blocks shared by concurrent streams of
//    one strand within a round.
//
// The manager learns about stream progress the same way every other
// observer does — as a TraceSink on the telemetry tee — and emits its own
// kSessionBatched / kSessionPatched / kSessionMerged events into the same
// stream, where the ContinuityAuditor checks the merge bookkeeping and the
// SloTracker aggregates per-session state.

#ifndef VAFS_SRC_MSM_SESSION_MANAGER_H_
#define VAFS_SRC_MSM_SESSION_MANAGER_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/msm/block_cache.h"
#include "src/msm/service_scheduler.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "src/util/result.h"

namespace vafs {

struct SessionOptions {
  bool enabled = false;
  // Arrivals within this window of a title's leader share its stream
  // outright (their missed trail is pinned in the cache).
  double batch_window_sec = 2.0;
  // Largest leader lead (in blocks) a catch-up patch may bridge; 0
  // disables patching (arrivals past the window start their own stream).
  int64_t max_patch_blocks = 0;
  // Slop added to the gap in the Section 3 runway bound, covering the
  // patch's startup rounds during which the leader keeps delivering.
  int64_t runway_margin_blocks = 4;
  // Pin the leader's recently delivered extents for a new rider, so the
  // blocks it just missed survive eviction until it consumes them.
  bool pin_leader_trail = true;
  int64_t trail_pin_limit = 64;  // most extents pinned per rider
};

// One viewer's admission through the session layer.
struct SessionTicket {
  enum class Mode {
    kLeader,   // owns the physical stream others may ride
    kBatched,  // rides the leader's stream from attach
    kPatched,  // catching up on a short patch stream
  };
  uint64_t session = 0;
  Mode mode = Mode::kLeader;
  uint64_t title = 0;
  RequestId request = 0;        // the physical stream this viewer consumes
  RequestId patch_request = 0;  // kPatched: the catch-up stream
  int64_t gap_blocks = 0;       // distance behind the leader at attach
  int64_t runway_bound = 0;     // kPatched: Section 3 buffer bound
  // First title block this viewer plays (0 = from the top). Mid-title
  // viewers exist on failover: a resumed viewer re-opens at its progress
  // point on a replica node and may batch or patch against other viewers
  // of the same title there.
  int64_t start_block = 0;
};

// Lifetime totals, for benches and vafs_top.
struct SessionCensus {
  int64_t viewers = 0;   // OpenSession calls that produced a ticket
  int64_t leaders = 0;   // sessions that opened a physical stream
  int64_t batched = 0;   // sessions riding a leader from attach
  int64_t patched = 0;   // sessions that opened a catch-up patch
  int64_t merged = 0;    // patches that closed their gap
  int64_t degraded = 0;  // patches lost to a pause/stop before merging
};

class SessionManager : public obs::TraceSink {
 public:
  // All pointers must outlive the manager. `trace` receives the session
  // events (normally the telemetry tee, with this manager registered as
  // its last sink); `cache` may be null (trail pinning disabled).
  SessionManager(ServiceScheduler* scheduler, Simulator* simulator, BlockCache* cache,
                 obs::TraceSink* trace, SessionOptions options);

  // Admits one viewer of `title`. `solo` is the fully resolved playback
  // the viewer would run alone; the manager either submits it (leader),
  // attaches to a live leader (batched), or submits a truncated catch-up
  // patch (patched). Admission failures of a leader propagate; a rejected
  // patch falls back to a solo leader stream. `start_block` is the title
  // block `solo` begins at (non-zero for mid-title viewers, e.g. failover
  // resumption); batching and patching translate between the viewer's and
  // the leader's block spaces through it.
  Result<SessionTicket> Open(uint64_t title, PlaybackRequest solo, int64_t start_block = 0);

  // Progress observation: merges patches, closes groups, re-applies a
  // destructively paused patch once.
  void OnEvent(const obs::TraceEvent& event) override;

  // Re-targets the manager at a rebuilt scheduler (crash recovery) and
  // drops all session state: every leader and patch died with the crash.
  void Rebind(ServiceScheduler* scheduler);

  // Viewers currently live: their consuming stream has not completed.
  int64_t LiveViewers() const;
  const SessionCensus& census() const { return census_; }
  const SessionOptions& options() const { return options_; }

 private:
  // One physical stream and the viewers riding it.
  struct Group {
    uint64_t title = 0;
    RequestId leader = 0;
    SimTime opened = 0;
    int64_t leader_start = 0;  // title block the leader's playback begins at
    int64_t leader_total = 0;
    bool closed = false;  // leader completed or stopped
    std::vector<PrimaryEntry> blocks;  // leader's playback, for trail pins
    std::vector<uint64_t> sessions;    // every session in the group
  };
  struct Session {
    SessionTicket ticket;
    bool merged = false;
    bool degraded = false;
    bool finished = false;
    bool resume_pending = false;  // one deferred re-apply per patch
    std::vector<std::pair<int64_t, int64_t>> pinned;  // leader-trail pins
  };

  void Emit(obs::TraceEventKind kind, const Session& session, int64_t runway) const;
  // Pins the leader's recent deliveries the rider missed: leader-space
  // blocks [max(rider_start, pos - trail_pin_limit), pos), where `pos` and
  // `rider_start` are absolute title-block positions.
  void PinLeaderTrail(const Group& group, int64_t leader_pos, int64_t rider_start,
                      Session* session);
  void UnpinTrail(Session* session);
  int64_t LeaderBlocksDone(RequestId leader) const;
  // `completed`: the leader finished the title (riders got everything) as
  // opposed to dying under a stop or destructive pause. A still-open patch
  // whose runway holds the leader's whole tail survives a completion.
  void CloseGroup(Group* group, bool completed);
  void HandlePatchGone(Session* session, bool try_resume);
  // Exactly-once degraded accounting: a rider can lose its leader and its
  // patch in the same round, and both paths mark it degraded.
  void MarkDegraded(Session* session);
  // True while the session's patch stream can still deliver blocks (running,
  // or paused with a deferred resume in flight).
  bool PatchStillRunning(const Session& session) const;

  ServiceScheduler* scheduler_;
  Simulator* simulator_;
  BlockCache* cache_;
  obs::TraceSink* trace_;
  SessionOptions options_;
  SessionCensus census_;
  uint64_t next_session_ = 1;
  std::map<uint64_t, Group> groups_;          // by leader request id
  std::map<uint64_t, uint64_t> live_group_;   // title -> leader request id
  std::map<uint64_t, Session> sessions_;      // by session id
  std::map<uint64_t, uint64_t> patch_index_;  // patch request id -> session id
};

}  // namespace vafs

#endif  // VAFS_SRC_MSM_SESSION_MANAGER_H_
