// Round I/O planner: turns one service round's block needs into an
// ordered list of disk transfers.
//
// The paper's round loop (Section 3.4) issues every block as its own disk
// operation, in request order, and admission control charges each one a
// worst-case reposition. The planner closes the gap between that bound and
// what the mechanism actually pays, in three steps over the whole round's
// needs at once:
//
//  1. Coalescing — physically contiguous blocks of one request merge into
//     a single multi-block transfer: one reposition instead of N. Blocks
//     separated by an eliminated-silence entry never merge even when their
//     extents happen to abut: a silence gap is a timeline boundary, and a
//     merged read across it would bind the later block's readiness to data
//     the round may not need (see scan_order_test.cc).
//  2. Dedup — two viewers of the same strand whose rounds want the same
//     extent share one transfer; each rider's block is marked ready when
//     the shared read completes, so lockstep viewers never read a block
//     twice even before the cache warms.
//  3. Block-level C-SCAN — transfers are dispatched in ascending-cylinder
//     elevator order starting from the arm's current cylinder, wrapping
//     once past the outermost requested cylinder. This replaces the
//     per-request kSeekScan sort: ordering per transfer, not per stream.
//
// With a disk array, each transfer is routed to the member holding its
// block (round-robin by block ordinal, DiskArray::MemberForBlock) and each
// member queue is C-SCAN-ordered independently; the scheduler dispatches
// one wave per queue depth via ReadBatch, completing at the slowest arm.
//
// The planner is pure: it consumes per-request candidate lists and arm
// positions and returns the transfer program. All mechanism (disk calls,
// retries, readiness reporting, cache fills) stays in the scheduler, so
// ordering and merging rules are unit-testable without a simulation.
//
// Scale note (DESIGN.md section 15): riders live in one flat arena
// (RoundPlan::riders) addressed by [rider_begin, rider_begin+rider_count)
// per transfer, so a 20k-stream round allocates nothing per transfer once
// the arena has warmed up. IncrementalRoundPlanner caches each request's
// coalesced runs between rounds and re-sorts only streams whose extents
// changed; its output order is byte-identical to BuildRoundPlan.

#ifndef VAFS_SRC_MSM_ROUND_PLANNER_H_
#define VAFS_SRC_MSM_ROUND_PLANNER_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/disk/disk_model.h"

namespace vafs {

// One block a request wants this round, in playback order. Silence
// entries carry no extent but still break coalescing runs.
struct PlanCandidate {
  int64_t ordinal = 0;  // block number within the request's stream
  bool silence = false;
  bool cache_hit = false;  // already resident: no transfer planned
  int64_t sector = -1;
  int64_t sectors = 0;
};

// One request's input to the planner.
struct PlanInput {
  uint64_t request = 0;
  std::vector<PlanCandidate> blocks;  // playback span to advance this round
  // Recording side: appends planned this round and the expected arm
  // position of the first one (the writer's previous end, for ordering).
  int64_t append_blocks = 0;
  int64_t append_position_sector = 0;
};

// A block riding a planned transfer (possibly shared between requests).
struct PlannedBlock {
  uint64_t request = 0;
  int64_t ordinal = 0;
  int64_t sector = -1;
  int64_t sectors = 0;
  // Round-global candidate index: candidates are numbered in input order,
  // one per PlanCandidate (silence and cache hits included), so the
  // scheduler can track per-candidate outcomes in a flat array instead of
  // a map keyed by (request, ordinal).
  int32_t slot = -1;
};

struct PlannedTransfer {
  bool is_append = false;
  // Reads: the (possibly merged) physical extent; riders live in
  // RoundPlan::riders at [rider_begin, rider_begin + rider_count).
  int64_t start_sector = 0;
  int64_t sectors = 0;
  int member = 0;  // disk-array member; 0 on a single disk
  uint32_t rider_begin = 0;
  uint32_t rider_count = 0;
  // Appends: the recording request and its block count.
  uint64_t append_request = 0;
  int64_t append_blocks = 0;
};

struct RoundPlan {
  // Dispatch order: C-SCAN within each member, members interleaved by
  // queue position (the scheduler groups one wave per position).
  std::vector<PlannedTransfer> transfers;
  // Rider arena: every transfer's blocks, contiguous per transfer. Reused
  // across rounds by the planners (clear keeps capacity).
  std::vector<PlannedBlock> riders;
  int64_t data_blocks = 0;      // playback blocks wanted this round
  int64_t cache_hits = 0;       // served from memory, no transfer
  int64_t read_transfers = 0;   // planned read operations
  int64_t coalesced_blocks = 0; // blocks that merged into a preceding one
  int64_t deduped_blocks = 0;   // blocks riding another request's transfer

  std::span<const PlannedBlock> riders_of(const PlannedTransfer& transfer) const {
    return {riders.data() + transfer.rider_begin, static_cast<size_t>(transfer.rider_count)};
  }
};

// Builds the round's transfer program from scratch. `head_cylinders[m]` is
// member m's current arm cylinder (one entry for a single disk);
// `array_members` <= 1 plans for a single spindle.
RoundPlan BuildRoundPlan(const DiskModel& model, const std::vector<int64_t>& head_cylinders,
                         int array_members, const std::vector<PlanInput>& inputs);

// Same program, written into `out` so a caller-owned plan's vectors are
// reused across rounds.
void BuildRoundPlanInto(const DiskModel& model, const std::vector<int64_t>& head_cylinders,
                        int array_members, const std::vector<PlanInput>& inputs, RoundPlan* out);

// Incremental planner for the scale hot path. Caches each request's
// coalesced run list between rounds (a request whose candidate geometry is
// unchanged skips coalescing entirely) and keeps the previous round's
// C-SCAN order so only new or changed transfers are sorted; survivors
// merge in O(transfers). The dispatch order is byte-identical to
// BuildRoundPlan on the same inputs: the sort key (member, start_sector,
// encounter order) is head-position-independent — cylinders are monotonic
// in sector — and the C-SCAN wrap becomes a per-member rotation at the
// first cylinder >= the arm, which is exactly the ScanKey order.
class IncrementalRoundPlanner {
 public:
  struct Stats {
    int64_t rounds = 0;
    int64_t inputs_seen = 0;
    int64_t inputs_reused = 0;   // coalescing skipped (geometry unchanged)
    int64_t groups_seen = 0;
    int64_t groups_resorted = 0; // transfers that needed a fresh sort
    int64_t full_sort_fallbacks = 0;
  };

  // Plans the round. The returned plan is owned by the planner and valid
  // until the next Plan()/Clear() call.
  const RoundPlan& Plan(const DiskModel& model, const std::vector<int64_t>& head_cylinders,
                        int array_members, const std::vector<PlanInput>& inputs);

  // Drops one request's cached runs (call when the request retires).
  void Forget(uint64_t request);
  void Clear();

  const Stats& stats() const { return stats_; }

 private:
  struct CachedRun {
    int64_t start_sector = 0;
    int64_t sectors = 0;
    int member = 0;
    uint32_t rider_begin = 0;  // into CachedInput::riders
    uint32_t rider_count = 0;
  };
  // Per-request cache: the exact candidate list it was built from (compared
  // field-by-field, no hashing), the coalesced runs, and the riders with
  // PlannedBlock::slot holding the candidate index *within* the input —
  // rebased to the round-global slot at emission time.
  struct CachedInput {
    std::vector<PlanCandidate> signature;
    int members = 0;
    std::vector<CachedRun> runs;
    std::vector<PlannedBlock> riders;
    int64_t data_blocks = 0;
    int64_t cache_hits = 0;
    int64_t coalesced_blocks = 0;
  };
  struct GroupRef {
    const CachedInput* input = nullptr;
    int32_t run = -1;
    int64_t slot_base = 0;
    int32_t next = -1;  // chain of refs sharing the group
  };
  struct Group {
    int64_t start_sector = 0;
    int64_t sectors = 0;
    int member = 0;
    int64_t cylinder = 0;
    int32_t seq = 0;  // encounter order this round (sort tie-break)
    bool is_append = false;
    uint64_t append_request = 0;
    int64_t append_blocks = 0;
    int32_t first_ref = -1;
    int32_t last_ref = -1;
    int64_t rider_total = 0;
  };
  struct ExtentKey {
    int64_t start = 0;
    int64_t sectors = 0;
    bool operator==(const ExtentKey& other) const {
      return start == other.start && sectors == other.sectors;
    }
  };
  struct ExtentKeyHash {
    size_t operator()(const ExtentKey& key) const {
      uint64_t h = 1469598103934665603ULL;
      h = (h ^ static_cast<uint64_t>(key.start)) * 1099511628211ULL;
      h = (h ^ static_cast<uint64_t>(key.sectors)) * 1099511628211ULL;
      return static_cast<size_t>(h);
    }
  };
  struct OrderedIdentity {
    int member = 0;
    int64_t start_sector = 0;
    int64_t sectors = 0;
  };

  void RebuildInput(const PlanInput& input, int members, CachedInput* cached);

  std::unordered_map<uint64_t, CachedInput> cache_;
  RoundPlan plan_;
  Stats stats_;

  // Round scratch (cleared, capacity kept).
  std::vector<Group> groups_;
  std::vector<GroupRef> refs_;
  std::unordered_map<ExtentKey, int32_t, ExtentKeyHash> group_map_;
  std::vector<int32_t> clean_order_;
  std::vector<int32_t> dirty_order_;
  std::vector<int32_t> merged_order_;
  std::vector<char> group_clean_;
  // Previous round's merged (pre-rotation) read order, for sort reuse.
  std::vector<OrderedIdentity> last_order_;
  std::vector<OrderedIdentity> next_order_;
};

}  // namespace vafs

#endif  // VAFS_SRC_MSM_ROUND_PLANNER_H_
