// Round I/O planner: turns one service round's block needs into an
// ordered list of disk transfers.
//
// The paper's round loop (Section 3.4) issues every block as its own disk
// operation, in request order, and admission control charges each one a
// worst-case reposition. The planner closes the gap between that bound and
// what the mechanism actually pays, in three steps over the whole round's
// needs at once:
//
//  1. Coalescing — physically contiguous blocks of one request merge into
//     a single multi-block transfer: one reposition instead of N. Blocks
//     separated by an eliminated-silence entry never merge even when their
//     extents happen to abut: a silence gap is a timeline boundary, and a
//     merged read across it would bind the later block's readiness to data
//     the round may not need (see scan_order_test.cc).
//  2. Dedup — two viewers of the same strand whose rounds want the same
//     extent share one transfer; each rider's block is marked ready when
//     the shared read completes, so lockstep viewers never read a block
//     twice even before the cache warms.
//  3. Block-level C-SCAN — transfers are dispatched in ascending-cylinder
//     elevator order starting from the arm's current cylinder, wrapping
//     once past the outermost requested cylinder. This replaces the
//     per-request kSeekScan sort: ordering per transfer, not per stream.
//
// With a disk array, each transfer is routed to the member holding its
// block (round-robin by block ordinal, DiskArray::MemberForBlock) and each
// member queue is C-SCAN-ordered independently; the scheduler dispatches
// one wave per queue depth via ReadBatch, completing at the slowest arm.
//
// The planner is pure: it consumes per-request candidate lists and arm
// positions and returns the transfer program. All mechanism (disk calls,
// retries, readiness reporting, cache fills) stays in the scheduler, so
// ordering and merging rules are unit-testable without a simulation.

#ifndef VAFS_SRC_MSM_ROUND_PLANNER_H_
#define VAFS_SRC_MSM_ROUND_PLANNER_H_

#include <cstdint>
#include <vector>

#include "src/disk/disk_model.h"

namespace vafs {

// One block a request wants this round, in playback order. Silence
// entries carry no extent but still break coalescing runs.
struct PlanCandidate {
  int64_t ordinal = 0;  // block number within the request's stream
  bool silence = false;
  bool cache_hit = false;  // already resident: no transfer planned
  int64_t sector = -1;
  int64_t sectors = 0;
};

// One request's input to the planner.
struct PlanInput {
  uint64_t request = 0;
  std::vector<PlanCandidate> blocks;  // playback span to advance this round
  // Recording side: appends planned this round and the expected arm
  // position of the first one (the writer's previous end, for ordering).
  int64_t append_blocks = 0;
  int64_t append_position_sector = 0;
};

// A block riding a planned transfer (possibly shared between requests).
struct PlannedBlock {
  uint64_t request = 0;
  int64_t ordinal = 0;
  int64_t sector = -1;
  int64_t sectors = 0;
};

struct PlannedTransfer {
  bool is_append = false;
  // Reads: the (possibly merged) physical extent and every rider.
  int64_t start_sector = 0;
  int64_t sectors = 0;
  int member = 0;  // disk-array member; 0 on a single disk
  std::vector<PlannedBlock> blocks;
  // Appends: the recording request and its block count.
  uint64_t append_request = 0;
  int64_t append_blocks = 0;
};

struct RoundPlan {
  // Dispatch order: C-SCAN within each member, members interleaved by
  // queue position (the scheduler groups one wave per position).
  std::vector<PlannedTransfer> transfers;
  int64_t data_blocks = 0;      // playback blocks wanted this round
  int64_t cache_hits = 0;       // served from memory, no transfer
  int64_t read_transfers = 0;   // planned read operations
  int64_t coalesced_blocks = 0; // blocks that merged into a preceding one
  int64_t deduped_blocks = 0;   // blocks riding another request's transfer
};

// Builds the round's transfer program. `head_cylinders[m]` is member m's
// current arm cylinder (one entry for a single disk); `array_members` <= 1
// plans for a single spindle.
RoundPlan BuildRoundPlan(const DiskModel& model, const std::vector<int64_t>& head_cylinders,
                         int array_members, const std::vector<PlanInput>& inputs);

}  // namespace vafs

#endif  // VAFS_SRC_MSM_ROUND_PLANNER_H_
