#include "src/msm/interleaved.h"

#include <cmath>
#include <string>

#include "src/util/units.h"

namespace vafs {

Result<InterleavedLayout> MakeInterleavedLayout(const MediaProfile& video,
                                                const MediaProfile& audio) {
  if (video.medium != Medium::kVideo || audio.medium != Medium::kAudio) {
    return Status(ErrorCode::kInvalidArgument, "need one video and one audio profile");
  }
  const double ratio = audio.units_per_sec / video.units_per_sec;
  if (std::abs(ratio - std::round(ratio)) > 1e-9 || ratio < 1.0) {
    return Status(ErrorCode::kInvalidArgument,
                  "audio rate must be an integer multiple of the frame rate");
  }
  if (audio.bits_per_unit != 8) {
    return Status(ErrorCode::kInvalidArgument,
                  "interleaving supports 8-bit audio samples");
  }
  InterleavedLayout layout;
  layout.frame_bytes = BitsToBytesCeil(video.bits_per_unit);
  layout.samples_per_frame = static_cast<int64_t>(std::llround(ratio));
  layout.frames_per_sec = video.units_per_sec;
  return layout;
}

Result<RecordingResult> RecordInterleavedAv(StrandStore* store, VideoSource* video,
                                            AudioSource* audio,
                                            const InterleavedLayout& layout,
                                            const StrandPlacement& placement,
                                            double duration_sec) {
  const int64_t total_frames = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(duration_sec * layout.frames_per_sec)));

  Result<std::unique_ptr<StrandWriter>> writer =
      store->CreateStrand(layout.Profile(), placement);
  if (!writer.ok()) {
    return writer.status();
  }

  RecordingResult result;
  std::vector<uint8_t> block;
  int64_t frames_in_block = 0;
  for (int64_t frame = 0; frame < total_frames; ++frame) {
    // Combine: the frame, then the audio covering its display interval.
    VideoFrame captured = video->NextFrame();
    if (static_cast<int64_t>(captured.payload.size()) != layout.frame_bytes) {
      return Status(ErrorCode::kInvalidArgument, "video source does not match the layout");
    }
    block.insert(block.end(), captured.payload.begin(), captured.payload.end());
    const std::vector<uint8_t> samples = audio->NextSamples(layout.samples_per_frame);
    block.insert(block.end(), samples.begin(), samples.end());

    if (++frames_in_block == placement.granularity || frame + 1 == total_frames) {
      if (Result<SimDuration> written = (*writer)->AppendBlock(block); !written.ok()) {
        return written.status();
      }
      block.clear();
      frames_in_block = 0;
    }
  }

  result.blocks_total = (*writer)->blocks_written();
  result.units_recorded = total_frames;
  result.avg_gap_sec = (*writer)->AverageGapSec();
  result.max_gap_sec = (*writer)->MaxGapSec();
  Result<StrandId> id = (*writer)->Finish(total_frames);
  if (!id.ok()) {
    return id.status();
  }
  result.strand = *id;
  return result;
}

Result<SeparatedUnit> SeparateUnit(const InterleavedLayout& layout,
                                   std::span<const uint8_t> block_payload,
                                   int64_t unit_within_block) {
  const int64_t unit_bytes = layout.UnitBytes();
  const int64_t offset = unit_within_block * unit_bytes;
  if (unit_within_block < 0 ||
      offset + unit_bytes > static_cast<int64_t>(block_payload.size())) {
    return Status(ErrorCode::kOutOfRange,
                  "unit " + std::to_string(unit_within_block) + " outside block of " +
                      std::to_string(block_payload.size()) + " bytes");
  }
  SeparatedUnit unit;
  auto begin = block_payload.begin() + offset;
  unit.frame.assign(begin, begin + layout.frame_bytes);
  unit.samples.assign(begin + layout.frame_bytes, begin + unit_bytes);
  return unit;
}

}  // namespace vafs
