// Strand store: the Multimedia Storage Manager's catalog of strands on one
// disk, with constrained placement of their blocks.
//
// The store owns the disk, the constrained allocator, and the set of
// finished strands. New strands are produced through StrandWriter, which
// allocates each media block within the strand's scattering window,
// writes the payload, and appends the index entry; on Finish() the index
// blocks themselves (HB/SB/PBs) are placed and written, and the strand
// becomes immutable. Realized inter-block gaps are tracked so admission
// control can use the fleet's true average scattering l_ds^avg.

#ifndef VAFS_SRC_MSM_STRAND_STORE_H_
#define VAFS_SRC_MSM_STRAND_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "src/core/continuity.h"
#include "src/layout/allocator.h"
#include "src/disk/disk.h"
#include "src/layout/allocator.h"
#include "src/layout/strand_index.h"
#include "src/msm/block_cache.h"
#include "src/msm/strand.h"
#include "src/obs/trace.h"
#include "src/util/result.h"

namespace vafs {

class StrandStore;

// Streams media blocks of one new strand to disk. Obtain from
// StrandStore::CreateStrand; call AppendBlock / AppendSilence in recording
// order, then Finish exactly once.
class StrandWriter {
 public:
  // Appends a media block with the given payload (<= BlockBytes; short
  // tail blocks are padded to whole sectors). Returns the simulated write
  // service time.
  Result<SimDuration> AppendBlock(std::span<const uint8_t> payload);

  // Appends an eliminated-silence block: no disk space, NULL index entry.
  Status AppendSilence();

  // Chooses how constrained allocation picks among feasible positions.
  // Scattering repair uses the farthest variants to make maximal progress
  // toward a distant target with each copied block.
  void SetPlacementPreference(PlacementPreference preference) { preference_ = preference; }

  // Directs the first block's unconstrained allocation to the first free
  // extent at/after `sector` (compaction packs strands back to back);
  // without a hint the first block goes to the largest free run.
  void SetAllocationHint(int64_t sector) { first_block_hint_ = sector; }

  // Anchors the first block's constrained allocation next to an existing
  // disk position (used by scattering repair, which must start its copy
  // chain within reach of the seam's preceding block). Only valid before
  // the first AppendBlock.
  Status SetAnchor(int64_t end_sector);

  // Completes the strand: records the exact unit count, persists index
  // blocks, registers the strand, and returns its ID.
  Result<StrandId> Finish(int64_t unit_count);

  // Realized placement quality so far.
  int64_t blocks_written() const { return blocks_written_; }

  // Sector just past the most recently placed block (or the anchor); -1
  // before any placement.
  int64_t previous_end_sector() const { return previous_end_sector_; }
  double AverageGapSec() const;
  double MaxGapSec() const { return max_gap_sec_; }

  ~StrandWriter();

  StrandWriter(const StrandWriter&) = delete;
  StrandWriter& operator=(const StrandWriter&) = delete;

 private:
  friend class StrandStore;
  StrandWriter(StrandStore* store, StrandInfo info);

  StrandStore* store_;
  StrandInfo info_;
  StrandIndex index_;
  std::vector<Extent> extents_;      // data extents, for teardown on abort
  std::vector<Extent> owned_index_;  // index extents after Finish
  int64_t sectors_per_block_;
  int64_t max_distance_cylinders_;
  int64_t min_distance_cylinders_;
  int64_t previous_end_sector_ = -1;  // -1: no block placed yet
  int64_t first_block_hint_ = -1;  // -1: no hint, use the largest free run
  PlacementPreference preference_ = PlacementPreference::kNearest;
  int64_t blocks_written_ = 0;
  double total_gap_sec_ = 0.0;
  double max_gap_sec_ = 0.0;
  bool finished_ = false;
};

class StrandStore {
 public:
  // The store does not own `disk`; it must outlive the store.
  explicit StrandStore(Disk* disk);

  Disk& disk() { return *disk_; }
  const DiskModel& model() const { return disk_->model(); }
  ConstrainedAllocator& allocator() { return allocator_; }

  // Optional observability: every media-block placement (through any
  // StrandWriter of this store) reports its realized gap against the
  // strand's scattering contract. The sink must outlive the store.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }
  obs::TraceSink* trace_sink() const { return trace_; }

  // Optional shared block cache coherence: every sector this store rewrites
  // (strand appends — including relocation and scattering repair, which
  // write through fresh StrandWriters — index persistence, and deletion,
  // whose freed extents will be reallocated) drops overlapping cache
  // entries. The cache must outlive the store.
  void set_block_cache(BlockCache* cache) { block_cache_ = cache; }
  BlockCache* block_cache() const { return block_cache_; }

  // Starts a new strand with the given media description and placement
  // contract (granularity + scattering bounds, from
  // ContinuityModel::DerivePlacement).
  Result<std::unique_ptr<StrandWriter>> CreateStrand(const MediaProfile& media,
                                                     const StrandPlacement& placement);

  // Looks up a finished strand.
  Result<const Strand*> Get(StrandId id) const;

  // Deletes a strand, returning all its extents (data + index) to the
  // allocator. Callers (the rope layer's GC) must ensure no references
  // remain.
  Status Delete(StrandId id);

  int64_t strand_count() const { return static_cast<int64_t>(strands_.size()); }

  // IDs of all finished strands (for the rope layer's garbage collector).
  std::vector<StrandId> AllIds() const;

  // --- Persistence support -----------------------------------------------------

  // Catalog entry for the on-disk image: the strand's metadata plus the
  // location of its Header Block, from which the whole index (and thus
  // every data extent) is recoverable.
  struct CatalogEntry {
    StrandInfo info;
    Extent header_block;
  };
  std::vector<CatalogEntry> ExportCatalog() const;

  // Observes catalog mutations (a strand finishing or being deleted), so
  // the crash-consistency layer can journal the intent between
  // checkpoints. Adoption during recovery does not notify.
  class CatalogListener {
   public:
    virtual ~CatalogListener() = default;
    virtual void OnStrandAdded(const CatalogEntry& entry) = 0;
    virtual void OnStrandDeleted(StrandId id) = 0;
  };
  void set_catalog_listener(CatalogListener* listener) { catalog_listener_ = listener; }

  // Every extent any strand occupies (data + index), unordered. The fsck
  // claim-map check unions these against the allocator's view.
  std::vector<Extent> AllExtents() const;

  // Re-registers a recovered strand: marks its extents allocated and
  // rebuilds gap statistics from the index. The id inside `info` is kept.
  Status AdoptStrand(const StrandInfo& info, StrandIndex index,
                     std::vector<Extent> index_extents);

  // Fleet-wide average realized scattering across all finished strands,
  // in seconds (l_ds^avg for admission control). Zero if nothing recorded.
  double AverageScatteringSec() const;

  // Reads one media block of a strand. Returns the simulated service
  // time; silence blocks cost nothing and yield an empty payload.
  Result<SimDuration> ReadBlock(StrandId id, int64_t block_number, std::vector<uint8_t>* out);

 private:
  friend class StrandWriter;

  struct StrandRecord {
    std::unique_ptr<Strand> strand;
    std::vector<Extent> data_extents;
    std::vector<Extent> index_extents;
    double total_gap_sec = 0.0;
    int64_t gap_count = 0;
  };

  // Drops cache entries overlapping [sector, sector + sectors) and traces
  // the coherence action when anything was resident.
  void InvalidateCache(int64_t sector, int64_t sectors);

  StrandId next_id_ = 1;
  Disk* disk_;
  BlockCache* block_cache_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  CatalogListener* catalog_listener_ = nullptr;
  ConstrainedAllocator allocator_;
  std::map<StrandId, StrandRecord> strands_;
};

}  // namespace vafs

#endif  // VAFS_SRC_MSM_STRAND_STORE_H_
