#include "src/msm/reorganizer.h"

#include <algorithm>
#include <vector>

namespace vafs {

Result<StrandHealth> AuditStrand(StrandStore* store, StrandId id,
                                 double bound_override_sec) {
  Result<const Strand*> strand_result = store->Get(id);
  if (!strand_result.ok()) {
    return strand_result.status();
  }
  const Strand& strand = **strand_result;
  const DiskModel& model = store->model();

  StrandHealth health;
  health.id = id;
  health.bound_sec =
      bound_override_sec >= 0 ? bound_override_sec : strand.info().max_scattering_sec;
  double total_gap = 0.0;
  int64_t gaps = 0;
  int64_t previous_end = -1;
  for (const PrimaryEntry& entry : strand.index().entries()) {
    if (entry.IsSilence()) {
      // Silence occupies no disk position; the playback duration it
      // represents only adds slack, so it resets nothing.
      continue;
    }
    ++health.data_blocks;
    if (previous_end > 0) {
      const double gap = UsecToSeconds(model.AccessGap(previous_end - 1, entry.sector));
      total_gap += gap;
      ++gaps;
      health.max_gap_sec = std::max(health.max_gap_sec, gap);
      if (gap > health.bound_sec + 1e-9) {
        ++health.anomalous_gaps;
      }
    }
    previous_end = entry.sector + entry.sector_count;
  }
  health.avg_gap_sec = gaps > 0 ? total_gap / static_cast<double>(gaps) : 0.0;
  return health;
}

Result<RelocationOutcome> RelocateStrand(StrandStore* store, StrandId id,
                                         int64_t pack_hint_sector, double new_bound_sec) {
  Result<const Strand*> strand_result = store->Get(id);
  if (!strand_result.ok()) {
    return strand_result.status();
  }
  const Strand& strand = **strand_result;
  const StrandInfo& info = strand.info();

  const double bound = new_bound_sec >= 0 ? new_bound_sec : info.max_scattering_sec;
  Result<std::unique_ptr<StrandWriter>> writer_result = store->CreateStrand(
      info.Profile(), StrandPlacement{info.granularity,
                                      std::min(info.min_scattering_sec, bound), bound});
  if (!writer_result.ok()) {
    return writer_result.status();
  }
  StrandWriter& writer = **writer_result;
  if (pack_hint_sector >= 0) {
    writer.SetAllocationHint(pack_hint_sector);
  }

  RelocationOutcome outcome;
  const int64_t sector_bytes = store->disk().bytes_per_sector();
  for (const PrimaryEntry& entry : strand.index().entries()) {
    if (entry.IsSilence()) {
      if (Status status = writer.AppendSilence(); !status.ok()) {
        return status;
      }
      continue;
    }
    std::vector<uint8_t> payload;
    Result<SimDuration> read = store->disk().Read(entry.sector, entry.sector_count, &payload);
    if (!read.ok()) {
      return read.status();
    }
    outcome.copy_time += *read;
    if (payload.empty()) {
      // Timing-only disks return no data; preserve sizes with zeros.
      payload.assign(static_cast<size_t>(entry.sector_count * sector_bytes), 0);
    }
    Result<SimDuration> write = writer.AppendBlock(payload);
    if (!write.ok()) {
      return write.status();
    }
    outcome.copy_time += *write;
    ++outcome.blocks_moved;
  }

  Result<StrandId> new_id = writer.Finish(info.unit_count);
  if (!new_id.ok()) {
    return new_id.status();
  }
  outcome.new_strand = *new_id;
  return outcome;
}

}  // namespace vafs
