// Heterogeneous blocks: audio and video stored together (Section 3.3.3).
//
// "Multiple media being recorded are stored within the same block, which
// may entail additional processing for combining these media during
// storage, and for separating them during retrieval. The advantage of
// this scheme is that it provides implicit inter-media synchronization."
//
// An interleaved strand's unit is one video frame together with the audio
// samples spanning its display time (R_a / R_v samples). Each block holds
// q such composite units, laid out as [frame 0][audio 0][frame 1][audio 1]
// ... so retrieval of a block delivers both media for its interval in one
// disk access — Eq. 6's single positioning gap per combined block, and
// synchronization for free. The cost the paper names is the combining/
// separating step, which InterleavedCodec implements explicitly.

#ifndef VAFS_SRC_MSM_INTERLEAVED_H_
#define VAFS_SRC_MSM_INTERLEAVED_H_

#include <cstdint>

#include "src/media/sources.h"
#include "src/msm/recorder.h"
#include "src/msm/strand_store.h"
#include "src/util/result.h"

namespace vafs {

// Fixed per-frame layout of an interleaved A/V stream.
struct InterleavedLayout {
  int64_t frame_bytes = 0;          // video payload per composite unit
  int64_t samples_per_frame = 0;    // audio samples per composite unit
  double frames_per_sec = 0.0;

  int64_t UnitBytes() const { return frame_bytes + samples_per_frame; }

  // The composite stream as a MediaProfile: video-rate units whose size
  // covers both media (what the continuity model and admission control
  // see — one stream, one request slot).
  MediaProfile Profile() const {
    return MediaProfile{Medium::kVideo, frames_per_sec, UnitBytes() * 8};
  }
};

// Derives the layout for a video/audio source pair. The audio rate must
// be an integer multiple of the frame rate (true for all presets).
Result<InterleavedLayout> MakeInterleavedLayout(const MediaProfile& video,
                                                const MediaProfile& audio);

// Records `duration_sec` from both sources into one interleaved strand.
// Returns the usual recording statistics; silence elimination does not
// apply (a block always carries its video).
Result<RecordingResult> RecordInterleavedAv(StrandStore* store, VideoSource* video,
                                            AudioSource* audio,
                                            const InterleavedLayout& layout,
                                            const StrandPlacement& placement,
                                            double duration_sec);

// Separates one composite unit out of a block payload read from disk.
struct SeparatedUnit {
  std::vector<uint8_t> frame;
  std::vector<uint8_t> samples;
};
Result<SeparatedUnit> SeparateUnit(const InterleavedLayout& layout,
                                   std::span<const uint8_t> block_payload,
                                   int64_t unit_within_block);

}  // namespace vafs

#endif  // VAFS_SRC_MSM_INTERLEAVED_H_
