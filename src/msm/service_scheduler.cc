#include "src/msm/service_scheduler.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <utility>

namespace vafs {

ServiceScheduler::ServiceScheduler(StrandStore* store, Simulator* simulator,
                                   AdmissionControl admission, SchedulerOptions options)
    : store_(store), simulator_(simulator), admission_(std::move(admission)), options_(options) {
  admission_.set_trace_sink(options_.trace);
}

std::vector<RequestSpec> ServiceScheduler::SlotHolderSpecs() const {
  std::vector<RequestSpec> specs;
  for (const auto& [id, request] : requests_) {
    if (request.stats.completed) {
      continue;
    }
    if (request.stats.paused && request.destructively_paused) {
      continue;  // the slot was released at pause time
    }
    if (request.playback.has_value()) {
      specs.push_back(request.playback->spec);
    } else if (request.recording.has_value()) {
      specs.push_back(request.recording->Spec());
    }
  }
  return specs;
}

bool ServiceScheduler::IsPending(RequestId id) const {
  return std::any_of(pending_.begin(), pending_.end(),
                     [id](const PendingAdmission& pending) { return pending.id == id; });
}

obs::SlotSnapshot ServiceScheduler::Snapshot() const {
  obs::SlotSnapshot snapshot;
  for (const auto& [id, request] : requests_) {
    if (request.stats.completed) {
      continue;
    }
    if (request.stats.paused) {
      if (request.destructively_paused) {
        ++snapshot.paused_destructive;
      } else {
        ++snapshot.paused_nondestructive;
      }
    } else if (IsPending(id)) {
      ++snapshot.pending;
    } else {
      ++snapshot.active;
    }
  }
  return snapshot;
}

obs::TraceEvent ServiceScheduler::TraceContext() const {
  obs::TraceEvent event;
  event.time = simulator_->Now();
  event.round = rounds_;
  event.k = current_k_;
  event.slots = Snapshot();
  return event;
}

void ServiceScheduler::Emit(const obs::TraceEvent& event) const {
  if (options_.trace != nullptr) {
    options_.trace->OnEvent(event);
  }
}

Result<RequestId> ServiceScheduler::Submit(ActiveRequest request, const RequestSpec& spec) {
  // Admission: existing = every request still holding a slot (active,
  // pending, or non-destructively paused); destructively paused requests
  // released theirs and must not be charged.
  Result<std::vector<int64_t>> schedule = std::vector<int64_t>{};
  if (options_.bypass_admission) {
    // Overload experiments: take everyone at a fixed round size.
    schedule->push_back(options_.forced_k > 0 ? options_.forced_k : current_k_);
  } else {
    schedule = admission_.PlanAdmission(SlotHolderSpecs(), spec, current_k_);
    if (!schedule.ok()) {
      obs::TraceEvent event = TraceContext();
      event.kind = obs::TraceEventKind::kSubmitRejected;
      event.detail = schedule.status().message();
      Emit(event);
      return schedule.status();
    }
  }
  if (options_.max_k > 0 && schedule->back() > options_.max_k) {
    obs::TraceEvent event = TraceContext();
    event.kind = obs::TraceEventKind::kSubmitRejected;
    event.detail = "needs k beyond configured maximum";
    Emit(event);
    return Status(ErrorCode::kAdmissionRejected,
                  "admitting would need k=" + std::to_string(schedule->back()) +
                      " > configured maximum " + std::to_string(options_.max_k));
  }

  const RequestId id = next_id_++;
  request.stats.id = id;
  request.stats.submit_time = simulator_->Now();
  if (request.playback.has_value()) {
    request.stats.blocks_total = static_cast<int64_t>(request.playback->blocks.size());
    const int64_t k_target = schedule->back();
    request.read_ahead = request.playback->read_ahead_blocks > 0
                             ? request.playback->read_ahead_blocks
                             : k_target;
    request.buffer_cap = request.playback->device_buffers;  // 0 resolved per round
  } else {
    request.stats.blocks_total = request.recording->total_blocks;
  }

  PendingAdmission pending;
  pending.id = id;
  if (options_.stepped_transitions) {
    pending.k_schedule.assign(schedule->begin(), schedule->end());
  } else {
    // Naive policy: jump straight to the target k (Section 3.4 shows this
    // can glitch in-flight streams; bench_admission_transition measures it).
    pending.k_schedule.push_back(schedule->back());
  }
  requests_.emplace(id, std::move(request));
  pending_.push_back(std::move(pending));
  obs::TraceEvent event = TraceContext();
  event.kind = obs::TraceEventKind::kSubmitAccepted;
  event.request = id;
  event.target_k = pending_.back().k_schedule.back();
  Emit(event);
  ScheduleRound();
  return id;
}

Result<RequestId> ServiceScheduler::SubmitPlayback(PlaybackRequest playback) {
  if (playback.blocks.empty() || playback.block_duration <= 0) {
    return Status(ErrorCode::kInvalidArgument, "empty playback request");
  }
  ActiveRequest request;
  const RequestSpec spec = playback.spec;
  request.playback = std::move(playback);
  return Submit(std::move(request), spec);
}

Result<RequestId> ServiceScheduler::SubmitRecording(RecordingRequest recording) {
  if (recording.total_blocks <= 0) {
    return Status(ErrorCode::kInvalidArgument, "empty recording request");
  }
  ActiveRequest request;
  const RequestSpec spec = recording.Spec();
  request.stats.is_recording = true;
  request.recording = std::move(recording);
  return Submit(std::move(request), spec);
}

void ServiceScheduler::ScheduleRound() {
  if (round_scheduled_) {
    return;
  }
  round_scheduled_ = true;
  simulator_->ScheduleAfter(0, [this] { RunRound(); });
}

namespace {

// Folds a finished or paused consumer's observations into the stats.
void FoldConsumer(const PlaybackConsumer* consumer, RequestStats* stats) {
  if (consumer == nullptr) {
    return;
  }
  stats->continuity_violations += consumer->violations();
  stats->total_tardiness += consumer->total_tardiness();
  stats->max_buffered_blocks = std::max(stats->max_buffered_blocks,
                                        consumer->max_buffered_blocks());
}

}  // namespace

void ServiceScheduler::FinishRequest(ActiveRequest* request, SimTime now) {
  request->stats.completed = true;
  request->stats.completion_time = now;
  FoldConsumer(request->consumer.get(), &request->stats);
  request->consumer.reset();
  if (request->writer != nullptr) {
    const int64_t units =
        request->recording->total_blocks * request->recording->placement.granularity;
    Result<StrandId> finished = request->writer->Finish(units);
    if (finished.ok()) {
      request->stats.recorded_strand = *finished;
    }
    request->writer.reset();
  }
  if (request->producer != nullptr) {
    request->stats.capture_overflows = request->producer->overflows();
    request->producer.reset();
  }
  obs::TraceEvent event = TraceContext();
  event.kind = obs::TraceEventKind::kCompleted;
  event.time = now;
  event.request = request->stats.id;
  event.blocks = request->stats.blocks_done;
  Emit(event);
}

bool ServiceScheduler::ReadBlockWithRetry(ActiveRequest* request, const PrimaryEntry& entry,
                                          SimTime* now) {
  Disk& disk = store_->disk();
  Result<SimDuration> service = disk.Read(entry.sector, entry.sector_count, nullptr);
  if (service.ok()) {
    *now += *service;
    return true;
  }
  // The failed attempt still moved the arm; charge its mechanical time.
  *now += disk.last_fault_service();
  ++request->stats.faults_seen;

  int64_t retries = 0;
  while (service.status().code() == ErrorCode::kIoError && !disk.failed() &&
         retries < options_.max_block_retries) {
    // Affordability: after the failed read the arm rests on the extent's
    // cylinder, so PeekServiceTime is exactly what the re-read will cost.
    // If that would push the round past its Eq. 11 budget, the retry would
    // steal another stream's continuity slack — skip instead.
    if (round_budget_ > 0 &&
        (*now - round_start_) + disk.PeekServiceTime(entry.sector, entry.sector_count) >
            round_budget_) {
      break;
    }
    ++retries;
    service = disk.Read(entry.sector, entry.sector_count, nullptr);
    ++request->stats.blocks_retried;
    const SimDuration spent = service.ok() ? *service : disk.last_fault_service();
    *now += spent;
    if (options_.trace != nullptr) {
      obs::TraceEvent event = TraceContext();
      event.kind = obs::TraceEventKind::kBlockRetried;
      event.time = *now;
      event.request = request->stats.id;
      event.sector = entry.sector;
      event.blocks = entry.sector_count;
      event.duration = spent;
      event.round_budget = round_budget_;
      if (!service.ok()) {
        event.detail = "faulted_again";
      }
      Emit(event);
    }
    if (service.ok()) {
      return true;
    }
    ++request->stats.faults_seen;
  }

  // Give up on this block: degraded playback renders it as silence rather
  // than stalling the stream (kBadSector is hopeless until relocated, and
  // further transient retries are either exhausted or unaffordable).
  ++request->stats.blocks_skipped;
  if (options_.trace != nullptr) {
    obs::TraceEvent event = TraceContext();
    event.kind = obs::TraceEventKind::kBlockSkipped;
    event.time = *now;
    event.request = request->stats.id;
    event.sector = entry.sector;
    event.blocks = entry.sector_count;
    event.round_budget = round_budget_;
    event.detail = service.status().message();
    Emit(event);
  }
  return false;
}

int64_t ServiceScheduler::ServicePlayback(ActiveRequest* request, SimTime* now) {
  PlaybackRequest& playback = *request->playback;
  const SimDuration effective_duration = static_cast<SimDuration>(
      static_cast<double>(playback.block_duration) / playback.rate_multiplier);
  const int64_t cap = request->buffer_cap > 0 ? request->buffer_cap : 2 * current_k_;
  int64_t transferred = 0;
  while (transferred < current_k_ &&
         request->next_block < static_cast<int64_t>(playback.blocks.size())) {
    if (request->consumer != nullptr && request->consumer->BufferedAt(*now) >= cap) {
      // Device buffers are full (e.g., slow motion): the disk switches to
      // other tasks rather than accumulate without bound (Section 3.3.2).
      break;
    }
    const PrimaryEntry& entry = playback.blocks[static_cast<size_t>(request->next_block)];
    if (!entry.IsSilence()) {
      if (ReadBlockWithRetry(request, entry, now)) {
        ++transferred;
      }
      // A skipped block falls through as a degraded frame: readiness is
      // still reported so the consumer's clock keeps running, but no data
      // moved and `transferred` does not count it.
    }
    // Report readiness of this block (silence is "ready" for free).
    if (request->consumer == nullptr) {
      request->prelude_ready_times.push_back(*now);
      const bool prelude_done =
          static_cast<int64_t>(request->prelude_ready_times.size()) >= request->read_ahead ||
          request->next_block + 1 == static_cast<int64_t>(playback.blocks.size());
      if (prelude_done) {
        // Anti-jitter read-ahead satisfied: playback starts now, and the
        // buffered blocks are ready at their recorded instants.
        const SimTime start = request->prelude_ready_times.back();
        request->consumer =
            std::make_unique<PlaybackConsumer>(effective_duration, start, 0);
        for (SimTime ready : request->prelude_ready_times) {
          request->consumer->BlockReady(ready);
        }
        request->prelude_ready_times.clear();
        if (request->stats.startup_latency == RequestStats::kUnsetLatency) {
          request->stats.startup_latency = start - request->stats.submit_time;
        }
      }
    } else {
      request->consumer->BlockReady(*now);
    }
    ++request->next_block;
    ++request->stats.blocks_done;
  }
  if (request->next_block == static_cast<int64_t>(playback.blocks.size())) {
    FinishRequest(request, *now);
  }
  return transferred;
}

int64_t ServiceScheduler::ServiceRecording(ActiveRequest* request, SimTime* now) {
  RecordingRequest& recording = *request->recording;
  if (request->producer == nullptr) {
    const SimDuration block_duration = SecondsToUsec(
        static_cast<double>(recording.placement.granularity) / recording.profile.units_per_sec);
    request->producer =
        std::make_unique<CaptureProducer>(block_duration, *now, recording.capture_buffers);
    Result<std::unique_ptr<StrandWriter>> writer =
        store_->CreateStrand(recording.profile, recording.placement);
    assert(writer.ok());
    request->writer = std::move(*writer);
  }
  const int64_t block_bytes =
      BitsToBytesCeil(recording.placement.granularity * recording.profile.bits_per_unit);
  const std::vector<uint8_t> payload(static_cast<size_t>(block_bytes), 0);

  int64_t transferred = 0;
  while (transferred < current_k_ && request->stats.blocks_done < recording.total_blocks) {
    if (request->producer->CaptureEnd(request->stats.blocks_done) > *now) {
      break;  // the camera has not finished this block yet
    }
    Result<SimDuration> service = request->writer->AppendBlock(payload);
    bool wrote = service.ok();
    if (wrote) {
      *now += *service;
    } else {
      Disk& disk = store_->disk();
      const bool device_fault = service.status().code() == ErrorCode::kIoError ||
                                service.status().code() == ErrorCode::kBadSector;
      assert(device_fault);  // allocator failures are admission bugs
      if (device_fault) {
        *now += disk.last_fault_service();
        ++request->stats.faults_seen;
        // Each retry lands on a freshly allocated extent (the faulted one
        // was returned to the pool), so there is no exact peek; bound the
        // retries by count and by the round budget at issue time. The
        // emitted events carry round_budget 0 — the Eq. 11 completion
        // guarantee is a retrieval-side contract; capture slack is already
        // measured by the producer's overflow accounting.
        int64_t retries = 0;
        while (!wrote && service.status().code() == ErrorCode::kIoError && !disk.failed() &&
               retries < options_.max_block_retries &&
               (round_budget_ == 0 || *now - round_start_ < round_budget_)) {
          ++retries;
          service = request->writer->AppendBlock(payload);
          ++request->stats.blocks_retried;
          wrote = service.ok();
          const SimDuration spent = wrote ? *service : disk.last_fault_service();
          *now += spent;
          if (options_.trace != nullptr) {
            obs::TraceEvent event = TraceContext();
            event.kind = obs::TraceEventKind::kBlockRetried;
            event.time = *now;
            event.request = request->stats.id;
            event.duration = spent;
            if (!wrote) {
              event.detail = "faulted_again";
            }
            Emit(event);
          }
          if (!wrote) {
            ++request->stats.faults_seen;
          }
        }
      }
      if (!wrote) {
        // Give the block up as an unrecorded gap: a NULL index entry keeps
        // the strand's timeline intact, and the capture buffer is released
        // so the device does not overflow on a dead disk.
        Status silence = request->writer->AppendSilence();
        assert(silence.ok());
        (void)silence;
        ++request->stats.blocks_skipped;
        if (options_.trace != nullptr) {
          obs::TraceEvent event = TraceContext();
          event.kind = obs::TraceEventKind::kBlockSkipped;
          event.time = *now;
          event.request = request->stats.id;
          event.detail = service.status().message();
          Emit(event);
        }
      }
    }
    request->producer->BlockWritten(*now);
    ++request->stats.blocks_done;
    if (wrote) {
      ++transferred;
    }
  }
  if (request->stats.blocks_done == recording.total_blocks) {
    FinishRequest(request, *now);
  }
  return transferred;
}

void ServiceScheduler::RunRound() {
  round_scheduled_ = false;
  ++rounds_;
  const SimTime round_start = simulator_->Now();
  SimTime now = round_start;

  // Phase in at most one admission step per round. A queued admission's
  // schedule was planned against the k of its submit instant; if earlier
  // transitions have since raised k, the stale low steps are skipped — k
  // only ever shrinks when a slot is released, never mid-ramp. The first
  // unskipped step is then at most current_k_ + 1, preserving Eq. 18's
  // one-step-per-round bound.
  if (!pending_.empty()) {
    PendingAdmission& front = pending_.front();
    assert(!front.k_schedule.empty());
    while (front.k_schedule.size() > 1 && front.k_schedule.front() <= current_k_) {
      front.k_schedule.pop_front();
    }
    current_k_ = std::max(current_k_, front.k_schedule.front());
    front.k_schedule.pop_front();
    if (front.k_schedule.empty()) {
      const RequestId activated = front.id;
      service_order_.push_back(activated);
      pending_.pop_front();
      obs::TraceEvent event = TraceContext();
      event.kind = obs::TraceEventKind::kActivated;
      event.request = activated;
      Emit(event);
    }
  }
  // Eq. 11 envelope of this round: the tightest serviced request's fetched
  // playback, min_i(k_i * d_i). Retries of faulted blocks are only issued
  // while the round still fits inside it.
  round_start_ = round_start;
  round_budget_ = 0;
  for (RequestId id : service_order_) {
    const ActiveRequest& request = requests_.at(id);
    if (request.stats.completed || request.stats.paused) {
      continue;
    }
    SimDuration block_playback = 0;
    if (request.playback.has_value()) {
      block_playback = static_cast<SimDuration>(
          static_cast<double>(request.playback->block_duration) /
          request.playback->rate_multiplier);
    } else {
      block_playback = SecondsToUsec(
          static_cast<double>(request.recording->placement.granularity) /
          request.recording->profile.units_per_sec);
    }
    const SimDuration budget = current_k_ * block_playback;
    if (round_budget_ == 0 || budget < round_budget_) {
      round_budget_ = budget;
    }
  }
  if (options_.trace != nullptr) {
    obs::TraceEvent event = TraceContext();
    event.kind = obs::TraceEventKind::kRoundStart;
    event.round_budget = round_budget_;
    Emit(event);
  }
  // Device events emitted while servicing this round carry the in-round
  // simulated clock instead of the device busy clock (exporters place them
  // on the shared timeline).
  store_->disk().set_time_hint(&now);

  // Section 6.2 SCAN option: service this round's requests in disk-position
  // order, shrinking the inter-request repositioning cost.
  std::vector<RequestId> round_order(service_order_.begin(), service_order_.end());
  if (options_.service_order == ServiceOrder::kSeekScan) {
    std::sort(round_order.begin(), round_order.end(), [this](RequestId a, RequestId b) {
      return NextSector(requests_.at(a)) < NextSector(requests_.at(b));
    });
  }

  int64_t transferred_total = 0;
  for (RequestId id : round_order) {
    auto it = requests_.find(id);
    assert(it != requests_.end());
    ActiveRequest& request = it->second;
    if (request.stats.completed || request.stats.paused) {
      continue;
    }
    if (request.stats.start_time < 0) {
      request.stats.start_time = now;
    }
    const SimTime service_start = now;
    const int64_t transferred = request.playback.has_value() ? ServicePlayback(&request, &now)
                                                             : ServiceRecording(&request, &now);
    transferred_total += transferred;
    if (options_.trace != nullptr) {
      obs::TraceEvent event = TraceContext();
      event.kind = obs::TraceEventKind::kRequestServiced;
      event.time = now;
      event.request = id;
      event.blocks = transferred;
      event.duration = now - service_start;
      event.round_budget = round_budget_;
      if (request.playback.has_value()) {
        event.block_playback = static_cast<SimDuration>(
            static_cast<double>(request.playback->block_duration) /
            request.playback->rate_multiplier);
      } else {
        event.block_playback = SecondsToUsec(
            static_cast<double>(request.recording->placement.granularity) /
            request.recording->profile.units_per_sec);
      }
      Emit(event);
    }
  }
  store_->disk().set_time_hint(nullptr);
  if (options_.trace != nullptr) {
    obs::TraceEvent event = TraceContext();
    event.kind = obs::TraceEventKind::kRoundEnd;
    event.time = now;
    event.duration = now - round_start;
    event.blocks = transferred_total;
    event.round_budget = round_budget_;
    Emit(event);
  }
  simulator_->RunUntil(now);  // account the disk time this round consumed

  // Drop completed requests from the rotation.
  std::erase_if(service_order_, [this](RequestId id) {
    return requests_.at(id).stats.completed;
  });

  const bool have_work =
      !pending_.empty() ||
      std::any_of(service_order_.begin(), service_order_.end(), [this](RequestId id) {
        return !requests_.at(id).stats.paused;
      });
  if (!have_work) {
    return;
  }
  if (transferred_total > 0) {
    ScheduleRound();
    return;
  }
  // The round moved no data (buffers full, capture not ready): sleep until
  // the earliest instant more work exists instead of spinning.
  SimTime wake = -1;
  for (RequestId id : service_order_) {
    const ActiveRequest& request = requests_.at(id);
    if (request.stats.completed || request.stats.paused) {
      continue;
    }
    SimTime candidate = -1;
    if (request.playback.has_value() && request.consumer != nullptr) {
      candidate = request.consumer->NextDrainAfter(now);
    } else if (request.recording.has_value() && request.producer != nullptr) {
      candidate = request.producer->CaptureEnd(request.stats.blocks_done);
    }
    if (candidate >= 0 && (wake < 0 || candidate < wake)) {
      wake = candidate;
    }
  }
  if (wake < 0) {
    wake = now + 1000;  // defensive: never stall the rotation entirely
  }
  round_scheduled_ = true;
  simulator_->ScheduleAt(wake, [this] { RunRound(); });
}

Status ServiceScheduler::Stop(RequestId id) {
  auto it = requests_.find(id);
  if (it == requests_.end()) {
    return Status(ErrorCode::kNotFound, "request " + std::to_string(id));
  }
  ActiveRequest& request = it->second;
  if (request.stats.completed) {
    return Status::Ok();
  }
  // A stopped recording keeps what it captured so far; one that never wrote
  // a block is aborted outright (destroying the writer returns any
  // allocated extents), leaving no half-created strand behind.
  if (request.writer != nullptr) {
    if (request.stats.blocks_done > 0) {
      const int64_t units =
          request.stats.blocks_done * request.recording->placement.granularity;
      Result<StrandId> finished = request.writer->Finish(units);
      if (finished.ok()) {
        request.stats.recorded_strand = *finished;
      }
    }
    request.writer.reset();
  }
  if (request.producer != nullptr) {
    request.stats.capture_overflows = request.producer->overflows();
    request.producer.reset();
  }
  FoldConsumer(request.consumer.get(), &request.stats);
  request.consumer.reset();
  request.stats.completed = true;
  request.stats.completion_time = simulator_->Now();
  std::erase(service_order_, id);
  std::erase_if(pending_, [id](const PendingAdmission& p) { return p.id == id; });
  obs::TraceEvent event = TraceContext();
  event.kind = obs::TraceEventKind::kStop;
  event.request = id;
  event.blocks = request.stats.blocks_done;
  Emit(event);
  return Status::Ok();
}

Status ServiceScheduler::Pause(RequestId id, bool destructive) {
  auto it = requests_.find(id);
  if (it == requests_.end()) {
    return Status(ErrorCode::kNotFound, "request " + std::to_string(id));
  }
  ActiveRequest& request = it->second;
  if (request.stats.completed || request.stats.paused) {
    return Status(ErrorCode::kFailedPrecondition, "request not running");
  }
  request.stats.paused = true;
  request.destructively_paused = destructive;
  // Deadlines do not survive a pause: fold what the consumer saw and
  // restart the anti-jitter prelude on resume.
  FoldConsumer(request.consumer.get(), &request.stats);
  request.consumer.reset();
  request.prelude_ready_times.clear();
  if (destructive) {
    // The slot is released now: leave the rotation and any pending k ramp,
    // and let the remaining slot holders settle to a smaller k.
    std::erase(service_order_, id);
    std::erase_if(pending_, [id](const PendingAdmission& p) { return p.id == id; });
    Result<int64_t> k = admission_.TransientSafeBlocksPerRound(SlotHolderSpecs());
    if (k.ok() && *k < current_k_) {
      current_k_ = *k;
    }
  }
  obs::TraceEvent event = TraceContext();
  event.kind = obs::TraceEventKind::kPause;
  event.request = id;
  event.destructive = destructive;
  Emit(event);
  return Status::Ok();
}

Status ServiceScheduler::Resume(RequestId id) {
  auto it = requests_.find(id);
  if (it == requests_.end()) {
    return Status(ErrorCode::kNotFound, "request " + std::to_string(id));
  }
  ActiveRequest& request = it->second;
  if (request.stats.completed || !request.stats.paused) {
    return Status(ErrorCode::kFailedPrecondition, "request not paused");
  }
  if (!request.destructively_paused) {
    request.stats.paused = false;
    obs::TraceEvent event = TraceContext();
    event.kind = obs::TraceEventKind::kResume;
    event.request = id;
    Emit(event);
    ScheduleRound();
    return Status::Ok();
  }
  // Destructive pause released the slot: re-run admission control. The
  // resuming request holds no slot, so SlotHolderSpecs excludes it — it is
  // presented only once, as the candidate.
  const RequestSpec spec = request.playback.has_value() ? request.playback->spec
                                                        : request.recording->Spec();
  Result<std::vector<int64_t>> schedule =
      admission_.PlanAdmission(SlotHolderSpecs(), spec, current_k_);
  if (!schedule.ok()) {
    obs::TraceEvent event = TraceContext();
    event.kind = obs::TraceEventKind::kResumeRejected;
    event.request = id;
    event.detail = schedule.status().message();
    Emit(event);
    return schedule.status();
  }
  request.stats.paused = false;
  request.destructively_paused = false;
  PendingAdmission pending;
  pending.id = id;
  pending.k_schedule.assign(schedule->begin(), schedule->end());
  pending_.push_back(std::move(pending));  // rejoin through the pending queue
  obs::TraceEvent event = TraceContext();
  event.kind = obs::TraceEventKind::kResume;
  event.request = id;
  event.destructive = true;
  Emit(event);
  ScheduleRound();
  return Status::Ok();
}

int64_t ServiceScheduler::NextSector(const ActiveRequest& request) const {
  if (request.playback.has_value()) {
    const auto& blocks = request.playback->blocks;
    for (int64_t b = request.next_block; b < static_cast<int64_t>(blocks.size()); ++b) {
      if (!blocks[static_cast<size_t>(b)].IsSilence()) {
        return blocks[static_cast<size_t>(b)].sector;
      }
    }
    return 0;
  }
  if (request.writer != nullptr && request.writer->previous_end_sector() >= 0) {
    return request.writer->previous_end_sector();
  }
  return 0;
}

void ServiceScheduler::RunUntilIdle() { simulator_->Run(); }

Result<RequestStats> ServiceScheduler::stats(RequestId id) const {
  auto it = requests_.find(id);
  if (it == requests_.end()) {
    return Status(ErrorCode::kNotFound, "request " + std::to_string(id));
  }
  RequestStats stats = it->second.stats;
  // Live requests report the consumer's running totals too.
  FoldConsumer(it->second.consumer.get(), &stats);
  if (it->second.producer != nullptr) {
    stats.capture_overflows = it->second.producer->overflows();
  }
  return stats;
}

int64_t ServiceScheduler::active_request_count() const {
  return static_cast<int64_t>(service_order_.size());
}

}  // namespace vafs
