#include "src/msm/service_scheduler.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "src/obs/span.h"

namespace vafs {

ServiceScheduler::ServiceScheduler(StrandStore* store, Simulator* simulator,
                                   AdmissionControl admission, SchedulerOptions options)
    : store_(store), simulator_(simulator), admission_(std::move(admission)), options_(options) {
  admission_.set_trace_sink(options_.trace);
  if (options_.disk_array != nullptr) {
    // Wall-clock engine wiring: the array owns parallel dispatch; the
    // scheduler only decides batch composition and folds the results.
    options_.disk_array->set_worker_pool(options_.worker_pool);
    options_.disk_array->set_checksum_payloads(options_.verify_payloads);
  }
}

ServiceScheduler::ActiveRequest* ServiceScheduler::FindRequest(RequestId id) {
  if (id >= id_to_slot_.size()) {
    return nullptr;
  }
  const int32_t slot = id_to_slot_[static_cast<size_t>(id)];
  if (slot < 0) {
    return nullptr;
  }
  assert(slots_[static_cast<size_t>(slot)].id == id);
  return &slots_[static_cast<size_t>(slot)].request;
}

const ServiceScheduler::ActiveRequest* ServiceScheduler::FindRequest(RequestId id) const {
  return const_cast<ServiceScheduler*>(this)->FindRequest(id);
}

ServiceScheduler::ActiveRequest& ServiceScheduler::RequestAt(RequestId id) {
  ActiveRequest* request = FindRequest(id);
  assert(request != nullptr);
  return *request;
}

const ServiceScheduler::ActiveRequest& ServiceScheduler::RequestAt(RequestId id) const {
  return const_cast<ServiceScheduler*>(this)->RequestAt(id);
}

ServiceScheduler::ActiveRequest& ServiceScheduler::InsertRequest(RequestId id,
                                                                 ActiveRequest request) {
  int32_t slot_index;
  if (!free_slots_.empty()) {
    slot_index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot_index = static_cast<int32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[static_cast<size_t>(slot_index)];
  slot.id = id;
  ++slot.generation;
  slot.request = std::move(request);
  if (id >= id_to_slot_.size()) {
    id_to_slot_.resize(static_cast<size_t>(id) + 1, -1);
  }
  id_to_slot_[static_cast<size_t>(id)] = slot_index;
  live_ids_.push_back(id);  // ids are issued monotonically: stays ascending
  CountSlots(slot.request, +1);
  return slot.request;
}

void ServiceScheduler::RetireCompletedRequests() {
  std::erase_if(live_ids_, [this](RequestId id) {
    const int32_t slot_index = id_to_slot_[static_cast<size_t>(id)];
    Slot& slot = slots_[static_cast<size_t>(slot_index)];
    if (!slot.request.stats.completed) {
      return false;
    }
    // The consumer/producer were already folded and reset when the request
    // completed, so the stats snapshot is final.
    finished_stats_.emplace(id, slot.request.stats);
    planner_.Forget(id);
    slot.id = 0;
    slot.request = ActiveRequest{};
    id_to_slot_[static_cast<size_t>(id)] = -1;
    free_slots_.push_back(slot_index);
    return true;
  });
}

void ServiceScheduler::CountSlots(const ActiveRequest& request, int64_t delta) {
  // Mirrors the legacy per-event sweep's classification order exactly.
  if (request.stats.completed) {
    return;
  }
  if (request.stats.paused && request.destructively_paused) {
    slot_counts_.paused_destructive += delta;
  } else if (request.stats.cache_admitted) {
    // Pending, active or non-destructively paused cache tenants all sit
    // in their own column: none of those states holds an Eq. 17 slot.
    slot_counts_.cache_tenants += delta;
  } else if (request.stats.paused) {
    slot_counts_.paused_nondestructive += delta;
  } else if (request.pending) {
    slot_counts_.pending += delta;
  } else {
    slot_counts_.active += delta;
  }
}

std::vector<RequestSpec> ServiceScheduler::SlotHolderSpecs() const {
  std::vector<RequestSpec> specs;
  ForEachRequest([&specs](RequestId, const ActiveRequest& request) {
    if (request.stats.completed) {
      return;
    }
    if (request.stats.paused && request.destructively_paused) {
      return;  // the slot was released at pause time
    }
    if (request.stats.cache_admitted) {
      // A cache tenant never passed the Eq. 17 test and holds no slot;
      // counting it here would charge later admissions (and k shrinks on
      // its revocation) for a slot that was never granted.
      return;
    }
    if (request.playback.has_value()) {
      specs.push_back(request.playback->spec);
    } else if (request.recording.has_value()) {
      specs.push_back(request.recording->Spec());
    }
  });
  return specs;
}

obs::TraceEvent ServiceScheduler::TraceContext() const {
  obs::TraceEvent event;
  event.time = simulator_->Now();
  event.round = rounds_;
  event.k = current_k_;
  event.node = options_.node;
  event.slots = Snapshot();
  return event;
}

void ServiceScheduler::Emit(const obs::TraceEvent& event) const {
  if (options_.trace != nullptr) {
    options_.trace->OnEvent(event);
  }
}

void ServiceScheduler::ChargeStage(obs::SpanStage stage, SimDuration usec) {
  if (!span_.open || usec <= 0) {
    return;
  }
  switch (stage) {
    case obs::SpanStage::kSeek:
      span_.stages.seek += usec;
      break;
    case obs::SpanStage::kTransfer:
      span_.stages.transfer += usec;
      break;
    case obs::SpanStage::kRetry:
      span_.stages.retry += usec;
      break;
    case obs::SpanStage::kCache:
      span_.stages.cache += usec;
      break;
    case obs::SpanStage::kMergePatch:
      span_.stages.merge_patch += usec;
      break;
    case obs::SpanStage::kAppend:
      span_.stages.append += usec;
      break;
    default:
      span_.stages.queue += usec;
      break;
  }
}

void ServiceScheduler::ChargeTransfer(obs::SpanStage stage, Disk* device, SimDuration service) {
  if (!span_.open || service <= 0) {
    return;
  }
  if (stage == obs::SpanStage::kAppend) {
    // Appends interleave allocation and write; the arm's reposition is not
    // separable from the transfer, so the whole service is append time.
    ChargeStage(stage, service);
    return;
  }
  // The mechanical split: the arm's last reposition (clamped to the
  // service, which also covers rotation and transfer) is seek time; the
  // rest is the stage's own data movement.
  const SimDuration seek =
      std::min(service, device->model().SeekTimeForDistance(device->last_seek_cylinders()));
  span_.active_seek += seek;
  ChargeStage(obs::SpanStage::kSeek, seek);
  ChargeStage(stage, service - seek);
}

uint64_t ServiceScheduler::OpenTransferSpan(obs::SpanStage stage, uint64_t request,
                                            int64_t member) {
  if (!span_.open) {
    return 0;
  }
  span_.active_stage = stage;
  span_.active_request = request;
  span_.active_member = member;
  span_.active_parent = obs::ChildSpanId(span_.root, stage, span_.ordinal++);
  span_.retry_ordinal = 0;
  span_.active_seek = 0;
  return span_.active_parent;
}

void ServiceScheduler::EmitSpan(obs::SpanStage stage, uint64_t span_id, uint64_t parent,
                                SimTime end, SimDuration duration, uint64_t request,
                                int64_t member, SimDuration seek, int64_t blocks,
                                int64_t sector) {
  if (!span_.open || span_id == 0 || options_.trace == nullptr) {
    return;
  }
  obs::TraceEvent event = TraceContext();
  obs::StampSpan(&event, span_.trace_id, span_id, parent, stage);
  event.time = end;
  event.duration = duration;
  event.request = request;
  event.member = member;
  event.span_seek = seek;
  event.blocks = blocks;
  event.sector = sector;
  Emit(event);
}

obs::SpanStage ServiceScheduler::TransferStageFor(const ActiveRequest& request) const {
  return request.merge_patch ? obs::SpanStage::kMergePatch : obs::SpanStage::kTransfer;
}

void ServiceScheduler::set_merge_patch(RequestId id, bool patch) {
  ActiveRequest* request = FindRequest(id);
  if (request != nullptr) {
    request->merge_patch = patch;
  }
}

bool ServiceScheduler::CacheAdmissionEnabled() const {
  return options_.cache_aware_admission && options_.service_order == ServiceOrder::kPlanned &&
         options_.block_cache != nullptr && options_.block_cache->enabled();
}

int64_t ServiceScheduler::CacheLookaheadBlocks() const {
  return options_.cache_admission_window > 0 ? options_.cache_admission_window
                                             : std::max<int64_t>(4 * current_k_, 8);
}

double ServiceScheduler::ExpectedCacheCoverage(const PlaybackRequest& playback,
                                               int64_t from_block) const {
  const BlockCache* cache = options_.block_cache;
  const int64_t window = CacheLookaheadBlocks();
  // Sectors some live stream (rotating or still pending admission) is
  // scheduled to read within the window: the candidate can ride those
  // transfers (or their freshly cached results) even where the cache is
  // still cold.
  std::set<int64_t> scheduled;
  ForEachRequest([&scheduled, window](RequestId, const ActiveRequest& active) {
    if (active.stats.completed || active.stats.paused || !active.playback.has_value()) {
      return;
    }
    const auto& blocks = active.playback->blocks;
    const int64_t limit =
        std::min<int64_t>(active.next_block + window, static_cast<int64_t>(blocks.size()));
    for (int64_t b = active.next_block; b < limit; ++b) {
      const PrimaryEntry& entry = blocks[static_cast<size_t>(b)];
      if (!entry.IsSilence()) {
        scheduled.insert(entry.sector);
      }
    }
  });
  int64_t data = 0;
  int64_t covered = 0;
  const int64_t limit =
      std::min<int64_t>(from_block + window, static_cast<int64_t>(playback.blocks.size()));
  for (int64_t b = from_block; b < limit; ++b) {
    const PrimaryEntry& entry = playback.blocks[static_cast<size_t>(b)];
    if (entry.IsSilence()) {
      continue;
    }
    ++data;
    if (cache->Contains(entry.sector, entry.sector_count) || scheduled.count(entry.sector) > 0) {
      ++covered;
    }
  }
  return data > 0 ? static_cast<double>(covered) / static_cast<double>(data) : 0.0;
}

Result<RequestId> ServiceScheduler::Submit(ActiveRequest request, const RequestSpec& spec) {
  // Admission: existing = every request still holding a slot (active,
  // pending, or non-destructively paused); destructively paused requests
  // released theirs and must not be charged.
  Result<std::vector<int64_t>> schedule = std::vector<int64_t>{};
  bool cache_admit = false;
  double coverage = 0.0;
  if (options_.bypass_admission) {
    // Overload experiments: take everyone at a fixed round size.
    schedule->push_back(options_.forced_k > 0 ? options_.forced_k : current_k_);
  } else {
    schedule = admission_.PlanAdmission(SlotHolderSpecs(), spec, current_k_);
    if (!schedule.ok()) {
      // Cache-aware second chance: the Eq. 17 test prices every block at a
      // full disk transfer, but a viewer trailing an admitted stream of the
      // same strand is served mostly from memory. Admit at the current k
      // when the expected coverage clears the threshold; a later coverage
      // collapse destructively pauses the stream (back to n_max).
      if (request.playback.has_value() && CacheAdmissionEnabled()) {
        coverage = ExpectedCacheCoverage(*request.playback, 0);
        if (coverage + 1e-9 >= options_.cache_admission_min_hit_rate) {
          cache_admit = true;
          // Join at the rotation's round size (k transitions already
          // planned count: before the first round current_k_ is still 0).
          int64_t rotation_k = current_k_;
          for (const PendingAdmission& pending : pending_) {
            rotation_k = std::max(rotation_k, pending.k_schedule.back());
          }
          schedule = std::vector<int64_t>{rotation_k};
        }
      }
      if (!cache_admit) {
        obs::TraceEvent event = TraceContext();
        event.kind = obs::TraceEventKind::kSubmitRejected;
        event.detail = schedule.status().message();
        Emit(event);
        return schedule.status();
      }
    }
  }
  if (options_.max_k > 0 && schedule->back() > options_.max_k) {
    obs::TraceEvent event = TraceContext();
    event.kind = obs::TraceEventKind::kSubmitRejected;
    event.detail = "needs k beyond configured maximum";
    Emit(event);
    return Status(ErrorCode::kAdmissionRejected,
                  "admitting would need k=" + std::to_string(schedule->back()) +
                      " > configured maximum " + std::to_string(options_.max_k));
  }

  const RequestId id = next_id_++;
  request.stats.id = id;
  request.stats.submit_time = simulator_->Now();
  request.stats.cache_admitted = cache_admit;
  if (request.playback.has_value()) {
    request.stats.blocks_total = static_cast<int64_t>(request.playback->blocks.size());
    const int64_t k_target = schedule->back();
    request.read_ahead = request.playback->read_ahead_blocks > 0
                             ? request.playback->read_ahead_blocks
                             : k_target;
    request.buffer_cap = request.playback->device_buffers;  // 0 resolved per round
  } else {
    request.stats.blocks_total = request.recording->total_blocks;
  }

  if (cache_admit) {
    // Emitted before the request joins the ledger, so the attached slot
    // snapshot agrees with the replayed lifecycle.
    obs::TraceEvent event = TraceContext();
    event.kind = obs::TraceEventKind::kCacheAdmit;
    event.request = id;
    event.cache_hit_rate = coverage;
    event.detail = "expected coverage " + std::to_string(coverage);
    Emit(event);
  }

  PendingAdmission pending;
  pending.id = id;
  if (options_.stepped_transitions) {
    pending.k_schedule.assign(schedule->begin(), schedule->end());
  } else {
    // Naive policy: jump straight to the target k (Section 3.4 shows this
    // can glitch in-flight streams; bench_admission_transition measures it).
    pending.k_schedule.push_back(schedule->back());
  }
  request.pending = true;
  InsertRequest(id, std::move(request));
  pending_.push_back(std::move(pending));
  obs::TraceEvent event = TraceContext();
  event.kind = obs::TraceEventKind::kSubmitAccepted;
  event.request = id;
  event.target_k = pending_.back().k_schedule.back();
  Emit(event);
  ScheduleRound();
  return id;
}

Result<RequestId> ServiceScheduler::SubmitPlayback(PlaybackRequest playback) {
  if (playback.blocks.empty() || playback.block_duration <= 0) {
    return Status(ErrorCode::kInvalidArgument, "empty playback request");
  }
  ActiveRequest request;
  const RequestSpec spec = playback.spec;
  request.playback = std::move(playback);
  return Submit(std::move(request), spec);
}

Result<RequestId> ServiceScheduler::SubmitRecording(RecordingRequest recording) {
  if (recording.total_blocks <= 0) {
    return Status(ErrorCode::kInvalidArgument, "empty recording request");
  }
  ActiveRequest request;
  const RequestSpec spec = recording.Spec();
  request.stats.is_recording = true;
  request.recording = std::move(recording);
  return Submit(std::move(request), spec);
}

void ServiceScheduler::ScheduleRound() {
  if (round_scheduled_) {
    return;
  }
  round_scheduled_ = true;
  simulator_->ScheduleAfter(0, [this] { RunRound(); });
}

namespace {

// Folds a finished or paused consumer's observations into the stats.
void FoldConsumer(const PlaybackConsumer* consumer, RequestStats* stats) {
  if (consumer == nullptr) {
    return;
  }
  stats->continuity_violations += consumer->violations();
  stats->total_tardiness += consumer->total_tardiness();
  stats->max_buffered_blocks = std::max(stats->max_buffered_blocks,
                                        consumer->max_buffered_blocks());
}

// Playback duration of one block at the request's rate.
SimDuration EffectiveBlockDuration(const PlaybackRequest& playback) {
  return static_cast<SimDuration>(static_cast<double>(playback.block_duration) /
                                  playback.rate_multiplier);
}

SimDuration RecordingBlockDuration(const RecordingRequest& recording) {
  return SecondsToUsec(static_cast<double>(recording.placement.granularity) /
                       recording.profile.units_per_sec);
}

}  // namespace

void ServiceScheduler::UnpinPreludePages(ActiveRequest* request) {
  if (options_.block_cache != nullptr) {
    for (const auto& [sector, sectors] : request->pinned_extents) {
      options_.block_cache->Unpin(sector, sectors);
    }
  }
  request->pinned_extents.clear();
}

void ServiceScheduler::FinishRequest(ActiveRequest* request, SimTime now) {
  WithSlotUpdate(*request, [request, now] {
    request->stats.completed = true;
    request->stats.completion_time = now;
  });
  UnpinPreludePages(request);
  FoldConsumer(request->consumer.get(), &request->stats);
  request->consumer.reset();
  if (request->writer != nullptr) {
    const int64_t units =
        request->recording->total_blocks * request->recording->placement.granularity;
    Result<StrandId> finished = request->writer->Finish(units);
    if (finished.ok()) {
      request->stats.recorded_strand = *finished;
    }
    request->writer.reset();
  }
  if (request->producer != nullptr) {
    request->stats.capture_overflows = request->producer->overflows();
    request->producer.reset();
  }
  obs::TraceEvent event = TraceContext();
  event.kind = obs::TraceEventKind::kCompleted;
  event.time = now;
  event.request = request->stats.id;
  event.blocks = request->stats.blocks_done;
  Emit(event);
}

bool ServiceScheduler::TransferWithRetry(ActiveRequest* request, Disk* device,
                                         const std::function<Result<SimDuration>()>& attempt,
                                         const std::function<SimDuration()>& peek_retry,
                                         int64_t sector, int64_t sectors, SimTime* now,
                                         Status* fail_status) {
  Result<SimDuration> service = attempt();
  if (service.ok()) {
    ChargeTransfer(span_.active_stage, device, *service);
    *now += *service;
    return true;
  }
  // The failed attempt still moved the arm; charge its mechanical time.
  ChargeStage(obs::SpanStage::kRetry, device->last_fault_service());
  *now += device->last_fault_service();
  ++request->stats.faults_seen;

  int64_t retries = 0;
  while (service.status().code() == ErrorCode::kIoError && !device->failed() &&
         retries < options_.max_block_retries) {
    if (peek_retry != nullptr) {
      // Affordability: after the failed op the arm rests on the extent's
      // cylinder, so PeekServiceTime is exactly what the re-attempt will
      // cost. If that would push the round past its Eq. 11 budget, the
      // retry would steal another stream's continuity slack — skip instead.
      if (round_budget_ > 0 && (*now - round_start_) + peek_retry() > round_budget_) {
        break;
      }
    } else if (round_budget_ > 0 && *now - round_start_ >= round_budget_) {
      // No exact peek (appends land on a freshly allocated extent each
      // attempt): bound the retries by count and the budget at issue time.
      break;
    }
    ++retries;
    service = attempt();
    ++request->stats.blocks_retried;
    const SimDuration spent = service.ok() ? *service : device->last_fault_service();
    ChargeStage(obs::SpanStage::kRetry, spent);
    *now += spent;
    if (span_.open && span_.active_parent != 0) {
      EmitSpan(obs::SpanStage::kRetry,
               obs::ChildSpanId(span_.active_parent, obs::SpanStage::kRetry,
                                span_.retry_ordinal++),
               span_.active_parent, *now, spent, request->stats.id, span_.active_member,
               /*seek=*/0, sectors, sector);
    }
    if (options_.trace != nullptr) {
      obs::TraceEvent event = TraceContext();
      event.kind = obs::TraceEventKind::kBlockRetried;
      event.time = *now;
      event.request = request->stats.id;
      event.sector = sector;
      event.blocks = sectors;
      event.duration = spent;
      // Events of peeked retries carry the budget the pre-check ran
      // against; issue-time-checked retries carry 0 — the Eq. 11
      // completion guarantee is a retrieval-side contract.
      event.round_budget = peek_retry != nullptr ? round_budget_ : 0;
      if (!service.ok()) {
        event.detail = "faulted_again";
      }
      Emit(event);
    }
    if (service.ok()) {
      return true;
    }
    ++request->stats.faults_seen;
  }
  if (fail_status != nullptr) {
    *fail_status = service.status();
  }
  return false;
}

bool ServiceScheduler::ReadExtentWithRetry(ActiveRequest* request, Disk* device, int64_t sector,
                                           int64_t sectors, SimTime* now) {
  Status fail = Status::Ok();
  const bool ok = TransferWithRetry(
      request, device, [device, sector, sectors] { return device->Read(sector, sectors, nullptr); },
      [device, sector, sectors] { return device->PeekServiceTime(sector, sectors); }, sector,
      sectors, now, &fail);
  if (ok) {
    return true;
  }
  // Give up on this block: degraded playback renders it as silence rather
  // than stalling the stream (kBadSector is hopeless until relocated, and
  // further transient retries are either exhausted or unaffordable).
  ++request->stats.blocks_skipped;
  if (options_.trace != nullptr) {
    obs::TraceEvent event = TraceContext();
    event.kind = obs::TraceEventKind::kBlockSkipped;
    event.time = *now;
    event.request = request->stats.id;
    event.sector = sector;
    event.blocks = sectors;
    event.round_budget = round_budget_;
    event.detail = fail.message();
    Emit(event);
  }
  return false;
}

void ServiceScheduler::ReportPlaybackReady(ActiveRequest* request, SimTime ready_time) {
  PlaybackRequest& playback = *request->playback;
  if (request->consumer == nullptr) {
    request->prelude_ready_times.push_back(ready_time);
    const bool prelude_done =
        static_cast<int64_t>(request->prelude_ready_times.size()) >= request->read_ahead ||
        request->next_block + 1 == static_cast<int64_t>(playback.blocks.size());
    if (prelude_done) {
      // Anti-jitter read-ahead satisfied: playback starts now, and the
      // buffered blocks are ready at their recorded instants.
      const SimTime start = request->prelude_ready_times.back();
      request->consumer =
          std::make_unique<PlaybackConsumer>(EffectiveBlockDuration(playback), start, 0);
      for (SimTime ready : request->prelude_ready_times) {
        request->consumer->BlockReady(ready);
      }
      request->prelude_ready_times.clear();
      if (request->stats.startup_latency == RequestStats::kUnsetLatency) {
        request->stats.startup_latency = start - request->stats.submit_time;
      }
      UnpinPreludePages(request);  // the startup guarantee is met; pages age normally
    }
  } else {
    request->consumer->BlockReady(ready_time);
  }
  ++request->next_block;
  ++request->stats.blocks_done;
}

int64_t ServiceScheduler::ServicePlayback(ActiveRequest* request, SimTime* now) {
  PlaybackRequest& playback = *request->playback;
  const int64_t cap = request->buffer_cap > 0 ? request->buffer_cap : 2 * current_k_;
  int64_t transferred = 0;
  while (transferred < current_k_ &&
         request->next_block < static_cast<int64_t>(playback.blocks.size())) {
    if (request->consumer != nullptr && request->consumer->BufferedAt(*now) >= cap) {
      // Device buffers are full (e.g., slow motion): the disk switches to
      // other tasks rather than accumulate without bound (Section 3.3.2).
      break;
    }
    const PrimaryEntry& entry = playback.blocks[static_cast<size_t>(request->next_block)];
    if (!entry.IsSilence()) {
      if (ReadExtentWithRetry(request, &store_->disk(), entry.sector, entry.sector_count, now)) {
        ++transferred;
      }
      // A skipped block falls through as a degraded frame: readiness is
      // still reported so the consumer's clock keeps running, but no data
      // moved and `transferred` does not count it.
    }
    // Report readiness of this block (silence is "ready" for free).
    ReportPlaybackReady(request, *now);
  }
  if (request->next_block == static_cast<int64_t>(playback.blocks.size())) {
    FinishRequest(request, *now);
  }
  return transferred;
}

void ServiceScheduler::EnsureRecordingDevices(ActiveRequest* request, SimTime now) {
  if (request->producer != nullptr) {
    return;
  }
  RecordingRequest& recording = *request->recording;
  request->producer = std::make_unique<CaptureProducer>(RecordingBlockDuration(recording), now,
                                                        recording.capture_buffers);
  Result<std::unique_ptr<StrandWriter>> writer =
      store_->CreateStrand(recording.profile, recording.placement);
  assert(writer.ok());
  request->writer = std::move(*writer);
}

int64_t ServiceScheduler::ServiceRecording(ActiveRequest* request, SimTime* now,
                                           int64_t max_blocks) {
  RecordingRequest& recording = *request->recording;
  EnsureRecordingDevices(request, *now);
  const int64_t block_bytes =
      BitsToBytesCeil(recording.placement.granularity * recording.profile.bits_per_unit);
  const int64_t sector_bytes = store_->disk().bytes_per_sector();
  // A whole-sector payload from the page pool: AppendBlock pads short
  // payloads with a fresh copy, so pre-padding keeps the append loop
  // allocation-free across rounds.
  const int64_t padded_bytes = ((block_bytes + sector_bytes - 1) / sector_bytes) * sector_bytes;
  PagePool& pool =
      options_.block_cache != nullptr ? options_.block_cache->page_pool() : scratch_pool_;
  std::vector<uint8_t>* payload = pool.Acquire(padded_bytes);

  int64_t transferred = 0;
  while (transferred < max_blocks && request->stats.blocks_done < recording.total_blocks) {
    if (request->producer->CaptureEnd(request->stats.blocks_done) > *now) {
      break;  // the camera has not finished this block yet
    }
    Status fail = Status::Ok();
    const bool wrote =
        TransferWithRetry(request, &store_->disk(),
                          [request, payload] { return request->writer->AppendBlock(*payload); },
                          nullptr, 0, 0, now, &fail);
    if (!wrote) {
      assert(fail.code() == ErrorCode::kIoError ||
             fail.code() == ErrorCode::kBadSector);  // allocator failures are admission bugs
      // Give the block up as an unrecorded gap: a NULL index entry keeps
      // the strand's timeline intact, and the capture buffer is released
      // so the device does not overflow on a dead disk.
      Status silence = request->writer->AppendSilence();
      assert(silence.ok());
      (void)silence;
      ++request->stats.blocks_skipped;
      if (options_.trace != nullptr) {
        obs::TraceEvent event = TraceContext();
        event.kind = obs::TraceEventKind::kBlockSkipped;
        event.time = *now;
        event.request = request->stats.id;
        event.detail = fail.message();
        Emit(event);
      }
    }
    request->producer->BlockWritten(*now);
    ++request->stats.blocks_done;
    if (wrote) {
      ++transferred;
    }
  }
  pool.Release(payload);
  if (request->stats.blocks_done == recording.total_blocks) {
    FinishRequest(request, *now);
  }
  return transferred;
}

void ServiceScheduler::ComputeRoundBudget() {
  // Eq. 11 envelope of this round: the tightest serviced request's fetched
  // playback, min_i(k_i * d_i). Retries of faulted blocks are only issued
  // while the round still fits inside it.
  round_budget_ = 0;
  for (RequestId id : service_order_) {
    const ActiveRequest& request = RequestAt(id);
    if (request.stats.completed || request.stats.paused) {
      continue;
    }
    const SimDuration block_playback = request.playback.has_value()
                                           ? EffectiveBlockDuration(*request.playback)
                                           : RecordingBlockDuration(*request.recording);
    const SimDuration budget = current_k_ * block_playback;
    if (round_budget_ == 0 || budget < round_budget_) {
      round_budget_ = budget;
    }
  }
}

const std::vector<PlanInput>& ServiceScheduler::BuildPlanInputs(SimTime round_start,
                                                                bool count_cache_stats) {
  BlockCache* cache = options_.block_cache != nullptr && options_.block_cache->enabled()
                          ? options_.block_cache
                          : nullptr;
  // Reuse plan_inputs_ (and each element's candidate vector) across rounds:
  // with a steady rotation the resize is a no-op and nothing allocates.
  size_t used = 0;
  for (RequestId id : service_order_) {
    ActiveRequest& request = RequestAt(id);
    if (request.stats.completed || request.stats.paused) {
      continue;
    }
    if (used == plan_inputs_.size()) {
      plan_inputs_.emplace_back();
    }
    PlanInput& input = plan_inputs_[used++];
    input.request = id;
    input.blocks.clear();
    input.append_blocks = 0;
    input.append_position_sector = 0;
    if (request.playback.has_value()) {
      PlaybackRequest& playback = *request.playback;
      const int64_t size = static_cast<int64_t>(playback.blocks.size());
      int64_t target = current_k_;
      if (request.consumer != nullptr) {
        // Device-buffer backpressure, evaluated once at plan time: the
        // round fetches at most the room available at its start.
        const int64_t cap = request.buffer_cap > 0 ? request.buffer_cap : 2 * current_k_;
        const int64_t room = cap - request.consumer->BufferedAt(round_start);
        target = std::min(target, std::max<int64_t>(room, 0));
      }
      int64_t data = 0;
      for (int64_t b = request.next_block; b < size && data < target; ++b) {
        const PrimaryEntry& entry = playback.blocks[static_cast<size_t>(b)];
        PlanCandidate candidate;
        candidate.ordinal = b;
        if (entry.IsSilence()) {
          candidate.silence = true;
        } else {
          candidate.sector = entry.sector;
          candidate.sectors = entry.sector_count;
          if (cache != nullptr) {
            candidate.cache_hit = count_cache_stats
                                      ? cache->Lookup(entry.sector, entry.sector_count)
                                      : cache->Contains(entry.sector, entry.sector_count);
          }
          ++data;
        }
        input.blocks.push_back(candidate);
      }
    } else {
      // Blocks the capture device has finished by round start, up to k.
      EnsureRecordingDevices(&request, round_start);
      RecordingRequest& recording = *request.recording;
      int64_t ready = 0;
      while (ready < current_k_ && request.stats.blocks_done + ready < recording.total_blocks &&
             request.producer->CaptureEnd(request.stats.blocks_done + ready) <= round_start) {
        ++ready;
      }
      input.append_blocks = ready;
      input.append_position_sector = request.writer->previous_end_sector();
    }
  }
  plan_inputs_.resize(used);
  return plan_inputs_;
}

std::vector<RequestId> ServiceScheduler::CollapsedCacheAdmissions(
    const std::vector<PlanInput>& inputs, const RoundPlan& plan) const {
  // Only cache-admitted streams can collapse; with no tenants in the
  // ledger the whole coverage audit is skipped (the 20k-stream hot path).
  if (slot_counts_.cache_tenants == 0) {
    return {};
  }
  const auto cache_admitted = [this](uint64_t id) {
    const ActiveRequest* request = FindRequest(id);
    return request != nullptr && request->stats.cache_admitted;
  };
  // Realized coverage this round: plan-time cache hits plus blocks riding
  // another request's transfer (dedup), over the round's data blocks.
  // Tracked for cache-admitted streams only; keyed by a std::map so the
  // collapsed list (and the revocation Pause order) stays id-ascending.
  std::map<uint64_t, std::pair<int64_t, int64_t>> demand;  // request -> (data, free)
  for (const PlanInput& input : inputs) {
    if (!cache_admitted(input.request)) {
      continue;
    }
    for (const PlanCandidate& candidate : input.blocks) {
      if (candidate.silence) {
        continue;
      }
      ++demand[input.request].first;
      if (candidate.cache_hit) {
        ++demand[input.request].second;
      }
    }
  }
  for (const PlannedTransfer& transfer : plan.transfers) {
    if (transfer.is_append || transfer.rider_count == 0) {
      continue;
    }
    // The first rider of each distinct extent pays for the read; every
    // other rider of that extent gets it for free.
    std::map<std::pair<int64_t, int64_t>, uint64_t> payer;
    for (const PlannedBlock& block : plan.riders_of(transfer)) {
      const auto key = std::make_pair(block.sector, block.sectors);
      auto [it, fresh] = payer.emplace(key, block.request);
      if (!fresh && it->second != block.request && cache_admitted(block.request)) {
        ++demand[block.request].second;
      }
    }
  }
  std::vector<RequestId> collapsed;
  for (const auto& [id, counts] : demand) {
    const auto [data, free_blocks] = counts;
    if (data <= 0) {
      continue;  // nothing demanded this round; no evidence either way
    }
    const double coverage = static_cast<double>(free_blocks) / static_cast<double>(data);
    if (coverage + 1e-9 < options_.cache_admission_min_hit_rate) {
      collapsed.push_back(id);
    }
  }
  return collapsed;
}

void ServiceScheduler::GroupExtents(const RoundPlan& plan, const PlannedTransfer& transfer) {
  // Distinct (sector, sectors) extents of a transfer, riders grouped in
  // encounter order — the first rider of each extent pays for the read.
  // The scratch vectors are reused across calls (inner vectors are cleared,
  // not destroyed) so steady-state rounds group without allocating.
  group_count_ = 0;
  for (const PlannedBlock& block : plan.riders_of(transfer)) {
    const std::pair<int64_t, int64_t> key{block.sector, block.sectors};
    size_t g = 0;
    for (; g < group_count_; ++g) {
      if (group_keys_[g] == key) {
        break;
      }
    }
    if (g == group_count_) {
      if (group_count_ == group_keys_.size()) {
        group_keys_.emplace_back();
        group_riders_.emplace_back();
      }
      group_keys_[group_count_] = key;
      group_riders_[group_count_].clear();
      ++group_count_;
    }
    group_riders_[g].push_back(&block);
  }
}

int64_t ServiceScheduler::ExecutePlannedRound(SimTime* now) {
  const SimTime round_start = *now;
  Disk& disk = store_->disk();
  DiskArray* array = options_.disk_array;
  const int members = array != nullptr ? array->members() : 1;
  BlockCache* cache = options_.block_cache != nullptr && options_.block_cache->enabled()
                          ? options_.block_cache
                          : nullptr;
  const DiskModel& model = store_->model();

  // Build the transfer program, revoking cache-admitted streams whose
  // coverage collapsed before any disk time is spent on them. Each pass
  // pauses at least one stream, so the loop is bounded.
  const std::vector<PlanInput>& inputs = BuildPlanInputs(round_start, /*count_cache_stats=*/true);
  const RoundPlan* planned = nullptr;
  for (;;) {
    head_scratch_.clear();
    if (array != nullptr) {
      for (int m = 0; m < members; ++m) {
        head_scratch_.push_back(array->member(m).head_cylinder());
      }
    } else {
      head_scratch_.push_back(disk.head_cylinder());
    }
    if (options_.incremental_planning) {
      planned = &planner_.Plan(model, head_scratch_, members, inputs);
    } else {
      BuildRoundPlanInto(model, head_scratch_, members, inputs, &scratch_plan_);
      planned = &scratch_plan_;
    }
    const std::vector<RequestId> collapsed = CollapsedCacheAdmissions(inputs, *planned);
    if (collapsed.empty()) {
      break;
    }
    for (RequestId id : collapsed) {
      obs::TraceEvent event = TraceContext();
      event.kind = obs::TraceEventKind::kCacheAdmitRevoked;
      event.time = *now;
      event.request = id;
      event.cache_hit_rate = cache != nullptr ? cache->RecentHitRate() : 0.0;
      event.detail = "round coverage below admission threshold";
      Emit(event);
      // Graceful fallback to the Eq. 17 regime: release the slot; the
      // stream may re-apply through Resume under plain admission.
      Pause(id, /*destructive=*/true);
    }
    BuildPlanInputs(round_start, /*count_cache_stats=*/false);  // refills `inputs`
    ComputeRoundBudget();
  }
  const RoundPlan& plan = *planned;

  if (options_.trace != nullptr) {
    obs::TraceEvent event = TraceContext();
    event.kind = obs::TraceEventKind::kRoundPlanned;
    event.time = *now;
    event.blocks = plan.data_blocks;
    event.transfers = plan.read_transfers;
    event.coalesced_blocks = plan.coalesced_blocks;
    event.deduped_blocks = plan.deduped_blocks;
    event.cache_hits = plan.cache_hits;
    event.cache_lookups = cache != nullptr ? plan.data_blocks : 0;
    if (cache != nullptr) {
      event.cache_resident_bytes = cache->stats().resident_bytes;
      event.cache_pinned_entries = cache->stats().pinned_entries;
      event.cache_evictions = cache->stats().evictions;
      event.cache_hit_rate = cache->RecentHitRate();
    }
    // Page-pool occupancy gauges (unrendered: the round-trace digest does
    // not change). A non-zero outstanding count between rounds is a leak.
    PagePool& pool =
        options_.block_cache != nullptr ? options_.block_cache->page_pool() : scratch_pool_;
    event.pool_outstanding = pool.pages_outstanding();
    event.pool_recycled = pool.pages_recycled();
    Emit(event);
  }
  if (span_.open && plan.cache_hits > 0) {
    // Blocks served from memory cost no disk time: a zero-duration span
    // records the cache's contribution to the round without skewing the
    // stage ledger.
    EmitSpan(obs::SpanStage::kCache,
             obs::ChildSpanId(span_.root, obs::SpanStage::kCache, span_.ordinal++), span_.root,
             *now, /*duration=*/0, /*request=*/0, /*member=*/-1, /*seek=*/0, plan.cache_hits,
             /*sector=*/0);
  }

  // Sectors more than one active stream wants within the lookahead window:
  // the interval between a leading and a trailing viewer. Their cache
  // entries are biased to evict last — the next hit is scheduled.
  wanted_.clear();
  const int64_t lookahead = CacheLookaheadBlocks();
  if (cache != nullptr) {
    for (RequestId id : service_order_) {
      const ActiveRequest& request = RequestAt(id);
      if (request.stats.completed || request.stats.paused || !request.playback.has_value()) {
        continue;
      }
      const auto& blocks = request.playback->blocks;
      const int64_t limit =
          std::min<int64_t>(request.next_block + lookahead, static_cast<int64_t>(blocks.size()));
      for (int64_t b = request.next_block; b < limit; ++b) {
        if (!blocks[static_cast<size_t>(b)].IsSilence()) {
          ++wanted_[blocks[static_cast<size_t>(b)].sector];
        }
      }
    }
  }

  // Per-candidate completion instants and fates, indexed by the planner's
  // round-global slot numbering; per-request disk time attribution (shared
  // transfers split evenly between their riders). All flat or lookup-only
  // scratch reused across rounds.
  size_t total_candidates = 0;
  for (const PlanInput& input : inputs) {
    total_candidates += input.blocks.size();
  }
  outcome_time_.assign(total_candidates, 0);
  outcome_ok_.assign(total_candidates, 0);
  outcome_known_.assign(total_candidates, 0);
  attributed_.clear();
  append_done_.clear();
  int64_t ops = 0;
  int64_t measured_seek = 0;
  const int64_t full_stroke = std::max<int64_t>(model.params().cylinders - 1, 0);

  using ExtentKey = std::pair<int64_t, int64_t>;
  const auto record_extent = [&](const ExtentKey& extent,
                                 const std::vector<const PlannedBlock*>& riders, SimTime completion,
                                 bool ok) {
    for (const PlannedBlock* block : riders) {
      outcome_time_[static_cast<size_t>(block->slot)] = completion;
      outcome_ok_[static_cast<size_t>(block->slot)] = ok ? 1 : 0;
      outcome_known_[static_cast<size_t>(block->slot)] = 1;
    }
    if (!ok || cache == nullptr) {
      return;
    }
    const auto want = wanted_.find(extent.first);
    const bool biased = want != wanted_.end() && want->second >= 2;
    cache->Insert(extent.first, extent.second, extent.second * disk.bytes_per_sector(), biased);
    for (const PlannedBlock* block : riders) {
      ActiveRequest& rider = RequestAt(block->request);
      if (rider.playback.has_value() && rider.consumer == nullptr) {
        // Prelude read-ahead: pinned so eviction cannot undo the startup
        // guarantee before playback begins. Record the extent only when the
        // pin actually landed (the insert can be dropped when everything
        // resident is pinned); otherwise the eventual unpin would release a
        // pin taken by a different request.
        if (cache->Pin(extent.first, extent.second)) {
          rider.pinned_extents.push_back(extent);
        }
      }
    }
  };

  // Reads one distinct extent with the shared retry policy, marking every
  // rider's fate (all riders lose the block on give-up).
  const auto read_extent = [&](Disk* device, const ExtentKey& extent,
                               const std::vector<const PlannedBlock*>& riders) {
    ActiveRequest& owner = RequestAt(riders.front()->request);
    Status fail = Status::Ok();
    const bool ok = TransferWithRetry(
        &owner, device,
        [device, extent] { return device->Read(extent.first, extent.second, nullptr); },
        [device, extent] { return device->PeekServiceTime(extent.first, extent.second); },
        extent.first, extent.second, now, &fail);
    if (!ok) {
      for (const PlannedBlock* block : riders) {
        ActiveRequest& rider = RequestAt(block->request);
        ++rider.stats.blocks_skipped;
        if (options_.trace != nullptr) {
          obs::TraceEvent event = TraceContext();
          event.kind = obs::TraceEventKind::kBlockSkipped;
          event.time = *now;
          event.request = block->request;
          event.sector = extent.first;
          event.blocks = extent.second;
          event.round_budget = round_budget_;
          event.detail = fail.message();
          Emit(event);
        }
      }
    }
    record_extent(extent, riders, *now, ok);
  };

  // A transfer whose whole device is gone: every rider loses its blocks
  // directly, without burning a per-block attempt through the retry
  // machinery (a dead device answers instantly and data never comes, so
  // per-block attempts are pure fault-accounting noise).
  const auto skip_transfer = [&](const PlannedTransfer& transfer, const char* why) {
    GroupExtents(plan, transfer);
    for (size_t g = 0; g < group_count_; ++g) {
      const ExtentKey& extent = group_keys_[g];
      const std::vector<const PlannedBlock*>& riders = group_riders_[g];
      for (const PlannedBlock* block : riders) {
        ActiveRequest& rider = RequestAt(block->request);
        ++rider.stats.blocks_skipped;
        if (options_.trace != nullptr) {
          obs::TraceEvent event = TraceContext();
          event.kind = obs::TraceEventKind::kBlockSkipped;
          event.time = *now;
          event.request = block->request;
          event.sector = extent.first;
          event.blocks = extent.second;
          event.round_budget = round_budget_;
          event.detail = why;
          Emit(event);
        }
      }
      record_extent(extent, riders, *now, false);
    }
  };

  const auto attribute = [&](const PlannedTransfer& transfer, SimDuration spent) {
    attribute_scratch_.clear();
    for (const PlannedBlock& block : plan.riders_of(transfer)) {
      if (std::find(attribute_scratch_.begin(), attribute_scratch_.end(), block.request) ==
          attribute_scratch_.end()) {
        attribute_scratch_.push_back(block.request);
      }
    }
    for (uint64_t rider : attribute_scratch_) {
      attributed_[rider] += spent / static_cast<SimDuration>(attribute_scratch_.size());
    }
  };

  const auto run_append = [&](const PlannedTransfer& transfer) {
    const SimTime start = *now;
    ActiveRequest& request = RequestAt(transfer.append_request);
    const uint64_t span_id =
        OpenTransferSpan(obs::SpanStage::kAppend, transfer.append_request, /*member=*/-1);
    append_done_[transfer.append_request] +=
        ServiceRecording(&request, now, transfer.append_blocks);
    attributed_[transfer.append_request] += *now - start;
    if (*now > start) {
      EmitSpan(obs::SpanStage::kAppend, span_id, span_.root, *now, *now - start,
               transfer.append_request, /*member=*/-1, /*seek=*/0, transfer.append_blocks,
               transfer.start_sector);
    }
  };

  if (array == nullptr) {
    // Single spindle: the plan order is the dispatch order (block-level
    // C-SCAN with appends interleaved at their expected arm positions).
    for (const PlannedTransfer& transfer : plan.transfers) {
      if (transfer.is_append) {
        run_append(transfer);
        continue;
      }
      const SimTime start = *now;
      const uint64_t owner = plan.riders_of(transfer).front().request;
      const obs::SpanStage stage = TransferStageFor(RequestAt(owner));
      const uint64_t span_id = OpenTransferSpan(stage, owner, /*member=*/-1);
      measured_seek +=
          std::abs(model.SectorToCylinder(transfer.start_sector) - disk.head_cylinder());
      ++ops;
      GroupExtents(plan, transfer);
      if (group_count_ == 1) {
        read_extent(&disk, group_keys_[0], group_riders_[0]);
      } else {
        // Coalesced transfer: one attempt for the merged extent; on a
        // fault, de-coalesce so one bad sector does not burn the retry
        // budget of its healthy neighbours.
        Result<SimDuration> service = disk.Read(transfer.start_sector, transfer.sectors, nullptr);
        if (service.ok()) {
          ChargeTransfer(stage, &disk, *service);
          *now += *service;
          for (size_t g = 0; g < group_count_; ++g) {
            record_extent(group_keys_[g], group_riders_[g], *now, true);
          }
        } else {
          ChargeStage(obs::SpanStage::kRetry, disk.last_fault_service());
          *now += disk.last_fault_service();
          ++RequestAt(owner).stats.faults_seen;
          for (size_t g = 0; g < group_count_; ++g) {
            measured_seek +=
                std::abs(model.SectorToCylinder(group_keys_[g].first) - disk.head_cylinder());
            ++ops;
            read_extent(&disk, group_keys_[g], group_riders_[g]);
          }
        }
      }
      attribute(transfer, *now - start);
      EmitSpan(stage, span_id, span_.root, *now, *now - start, owner, /*member=*/-1,
               span_.active_seek, static_cast<int64_t>(transfer.rider_count),
               transfer.start_sector);
    }
  } else {
    // Array-parallel dispatch: one wave per queue depth, each wave issuing
    // at most one transfer per member; the wave completes at the slowest
    // arm. Appends run after the waves on the primary spindle.
    for (int m = 0; m < members; ++m) {
      array->member(m).set_time_hint(now);
    }
    queue_scratch_.resize(static_cast<size_t>(members));
    for (auto& queue : queue_scratch_) {
      queue.clear();
    }
    append_scratch_.clear();
    for (const PlannedTransfer& transfer : plan.transfers) {
      if (transfer.is_append) {
        append_scratch_.push_back(&transfer);
      } else {
        queue_scratch_[static_cast<size_t>(transfer.member)].push_back(&transfer);
      }
    }
    // Payload buffers come from the page pool, so verify_payloads rounds
    // stop allocating O(blocks) vectors: each wave borrows one page per
    // batch entry and returns it at the barrier.
    PagePool& page_pool =
        options_.block_cache != nullptr ? options_.block_cache->page_pool() : scratch_pool_;
    const int64_t sector_bytes = disk.bytes_per_sector();
    uint64_t wave_index = 0;
    for (;;) {
      batch_scratch_.clear();
      wave_scratch_.clear();
      wave_dist_scratch_.clear();
      std::vector<DiskArray::BatchRequest>& batch = batch_scratch_;
      std::vector<const PlannedTransfer*>& wave = wave_scratch_;
      std::vector<int64_t>& wave_dists = wave_dist_scratch_;  // dispatch seek distance per entry
      for (int m = 0; m < members; ++m) {
        auto& queue = queue_scratch_[static_cast<size_t>(m)];
        if (queue.empty()) {
          continue;
        }
        if (array->member(m).failed()) {
          // The member already failed (this wave or an earlier round): the
          // arm no longer moves, so dispatching its queue would only burn a
          // per-block attempt against a device that answers instantly with
          // nothing. Drain the queue as direct skips instead.
          while (!queue.empty()) {
            skip_transfer(*queue.front(), "member_failed");
            queue.pop_front();
          }
          continue;
        }
        const PlannedTransfer* transfer = queue.front();
        queue.pop_front();
        const int64_t dist = std::abs(model.SectorToCylinder(transfer->start_sector) -
                                      array->member(m).head_cylinder());
        measured_seek += dist;
        ++ops;
        batch.push_back(DiskArray::BatchRequest{m, transfer->start_sector, transfer->sectors});
        wave.push_back(transfer);
        wave_dists.push_back(dist);
      }
      if (batch.empty()) {
        break;
      }
      const SimTime wave_start = *now;
      // With verify_payloads the wave reads real data and each member task
      // CRCs its own payload behind the join barrier (see DiskArray). The
      // pages are acquired and released on the scheduler thread only, so
      // pool state stays deterministic for any worker count.
      wave_pages_.clear();
      if (options_.verify_payloads) {
        for (const DiskArray::BatchRequest& request : batch) {
          wave_pages_.push_back(page_pool.Acquire(request.sectors * sector_bytes));
        }
      }
      Result<DiskArray::BatchOutcome> outcome = array->ReadBatchInto(batch, wave_pages_);
      assert(outcome.ok());  // the planner only builds well-formed batches
      for (std::vector<uint8_t>* page : wave_pages_) {
        page_pool.Release(page);
      }
      *now = wave_start + outcome->completion_time;

      // Span bookkeeping happens on the scheduler thread at the wave
      // barrier, in batch order — independent of worker scheduling. The
      // wave's ledger charge goes to its slowest arm (the wave completes
      // when that arm does): its reposition is seek, the rest the
      // dominant transfer's own stage.
      const uint64_t wave_span =
          span_.open ? obs::ChildSpanId(span_.root, obs::SpanStage::kWave, wave_index) : 0;
      if (span_.open) {
        size_t dominant = 0;
        for (size_t i = 1; i < wave.size(); ++i) {
          if (outcome->per_request[i].service > outcome->per_request[dominant].service) {
            dominant = i;
          }
        }
        const obs::SpanStage dominant_stage =
            TransferStageFor(RequestAt(plan.riders_of(*wave[dominant]).front().request));
        const SimDuration completion = outcome->completion_time;
        const SimDuration seek = std::min(
            completion, model.SeekTimeForDistance(wave_dists[dominant]));
        ChargeStage(obs::SpanStage::kSeek, seek);
        ChargeStage(dominant_stage, completion - seek);
        EmitSpan(obs::SpanStage::kWave, wave_span, span_.root, *now, completion, /*request=*/0,
                 static_cast<int64_t>(batch[dominant].member), seek,
                 static_cast<int64_t>(batch.size()), static_cast<int64_t>(wave_index));
      }
      ++wave_index;

      for (size_t i = 0; i < wave.size(); ++i) {
        const PlannedTransfer& transfer = *wave[i];
        const DiskArray::MemberOutcome& member_outcome = outcome->per_request[i];
        if (options_.verify_payloads && member_outcome.status.ok()) {
          // Fold in batch order at the barrier: the digest is independent
          // of which worker finished first.
          payload_digest_ = (payload_digest_ ^ member_outcome.payload_crc) * 1099511628211ULL;
        }
        attribute(transfer, member_outcome.service);
        const uint64_t entry_owner = plan.riders_of(transfer).front().request;
        const obs::SpanStage entry_stage = TransferStageFor(RequestAt(entry_owner));
        uint64_t entry_span = 0;
        if (span_.open) {
          entry_span = obs::ChildSpanId(wave_span, entry_stage, i);
          EmitSpan(entry_stage, entry_span, wave_span, wave_start + member_outcome.service,
                   member_outcome.service, entry_owner, transfer.member,
                   std::min(member_outcome.service, model.SeekTimeForDistance(wave_dists[i])),
                   static_cast<int64_t>(transfer.rider_count), transfer.start_sector);
        }
        if (member_outcome.status.ok()) {
          GroupExtents(plan, transfer);
          for (size_t g = 0; g < group_count_; ++g) {
            record_extent(group_keys_[g], group_riders_[g],
                          wave_start + member_outcome.service, true);
          }
        } else {
          // The faulted member's mechanical time is already inside the
          // wave completion; de-coalesced retries run after the wave.
          ++RequestAt(entry_owner).stats.faults_seen;
          Disk& member_disk = array->member(transfer.member);
          if (member_disk.failed()) {
            // The whole member died mid-wave: one member failure, not one
            // attempt per block. This transfer's riders are skipped here;
            // the arm's remaining queue drains at the next wave boundary.
            skip_transfer(transfer, "member_failed");
          } else {
            // The serial de-coalesced reads nest their charges (and any
            // retry subspans) under this wave entry's span.
            span_.active_parent = entry_span;
            span_.active_stage = entry_stage;
            span_.active_member = transfer.member;
            span_.retry_ordinal = 0;
            GroupExtents(plan, transfer);
            for (size_t g = 0; g < group_count_; ++g) {
              measured_seek += std::abs(model.SectorToCylinder(group_keys_[g].first) -
                                        member_disk.head_cylinder());
              ++ops;
              read_extent(&member_disk, group_keys_[g], group_riders_[g]);
            }
          }
        }
      }
    }
    for (const PlannedTransfer* transfer : append_scratch_) {
      run_append(*transfer);
    }
    for (int m = 0; m < members; ++m) {
      array->member(m).set_time_hint(nullptr);
    }
  }

  // Readiness in playback order: a request's blocks become ready at the
  // running maximum of their transfer completions (the consumer contract
  // requires non-decreasing instants), cache hits and silence at the
  // prefix reached so far.
  int64_t transferred_total = 0;
  size_t slot_cursor = 0;  // walks the planner's candidate numbering in input order
  for (const PlanInput& input : inputs) {
    const size_t input_slot_base = slot_cursor;
    slot_cursor += input.blocks.size();
    ActiveRequest* found = FindRequest(input.request);
    if (found == nullptr) {
      continue;
    }
    ActiveRequest& request = *found;
    if (request.stats.completed || request.stats.paused) {
      continue;
    }
    if (request.stats.start_time < 0) {
      request.stats.start_time = round_start;
    }
    int64_t moved = 0;
    SimDuration block_playback = 0;
    if (request.recording.has_value()) {
      block_playback = RecordingBlockDuration(*request.recording);
      moved = append_done_[input.request];
    } else {
      block_playback = EffectiveBlockDuration(*request.playback);
      SimTime prefix = round_start;
      size_t slot = input_slot_base;
      for (const PlanCandidate& candidate : input.blocks) {
        if (!candidate.silence && !candidate.cache_hit) {
          assert(outcome_known_[slot]);
          prefix = std::max(prefix, outcome_time_[slot]);
          if (outcome_ok_[slot] != 0) {
            ++moved;
          }
        } else if (candidate.cache_hit) {
          ++moved;  // served from memory: counts as transferred, costs nothing
        }
        ++slot;
        ReportPlaybackReady(&request, prefix);
      }
      if (request.next_block == static_cast<int64_t>(request.playback->blocks.size())) {
        FinishRequest(&request, *now);
      }
    }
    transferred_total += moved;
    if (options_.trace != nullptr) {
      obs::TraceEvent event = TraceContext();
      event.kind = obs::TraceEventKind::kRequestServiced;
      event.time = *now;
      event.request = input.request;
      event.blocks = moved;
      event.duration = attributed_[input.request];
      event.round_budget = round_budget_;
      event.block_playback = block_playback;
      Emit(event);
    }
  }

  if (options_.trace != nullptr && ops > 0) {
    // The measured-vs-worst-case l_seek ledger: admission charged every
    // operation a full-stroke reposition (the alpha of Eq. 12); the
    // C-SCAN program paid `measured_seek`.
    obs::TraceEvent event = TraceContext();
    event.kind = obs::TraceEventKind::kSeekAccounting;
    event.time = *now;
    event.transfers = ops;
    event.seek_cylinders = measured_seek;
    event.seek_cylinders_worst = ops * full_stroke;
    Emit(event);
  }
  return transferred_total;
}

void ServiceScheduler::RunRound() {
  round_scheduled_ = false;
  ++rounds_;
  const SimTime round_start = simulator_->Now();
  SimTime now = round_start;

  // Phase in at most one admission step per round. A queued admission's
  // schedule was planned against the k of its submit instant; if earlier
  // transitions have since raised k, the stale low steps are skipped — k
  // only ever shrinks when a slot is released, never mid-ramp. The first
  // unskipped step is then at most current_k_ + 1, preserving Eq. 18's
  // one-step-per-round bound.
  if (!pending_.empty()) {
    PendingAdmission& front = pending_.front();
    assert(!front.k_schedule.empty());
    while (front.k_schedule.size() > 1 && front.k_schedule.front() <= current_k_) {
      front.k_schedule.pop_front();
    }
    current_k_ = std::max(current_k_, front.k_schedule.front());
    front.k_schedule.pop_front();
    if (front.k_schedule.empty()) {
      const RequestId activated = front.id;
      service_order_.push_back(activated);
      pending_.pop_front();
      WithSlotUpdate(RequestAt(activated), [this, activated] {
        RequestAt(activated).pending = false;
      });
      obs::TraceEvent event = TraceContext();
      event.kind = obs::TraceEventKind::kActivated;
      event.request = activated;
      Emit(event);
    }
    // batch_activation: keep draining admissions whose ramp is already
    // satisfied (their single remaining step needs no k raise). k itself
    // still moved at most one step above — only same-k activations batch —
    // so a 20k-stream ramp-in joins in one round instead of 20k.
    while (options_.batch_activation && !pending_.empty()) {
      PendingAdmission& next = pending_.front();
      assert(!next.k_schedule.empty());
      while (next.k_schedule.size() > 1 && next.k_schedule.front() <= current_k_) {
        next.k_schedule.pop_front();
      }
      if (next.k_schedule.front() > current_k_ || next.k_schedule.size() > 1) {
        break;  // needs a real Eq. 18 step: one per round, wait your turn
      }
      const RequestId activated = next.id;
      service_order_.push_back(activated);
      pending_.pop_front();
      WithSlotUpdate(RequestAt(activated), [this, activated] {
        RequestAt(activated).pending = false;
      });
      obs::TraceEvent event = TraceContext();
      event.kind = obs::TraceEventKind::kActivated;
      event.request = activated;
      Emit(event);
    }
  }
  round_start_ = round_start;
  ComputeRoundBudget();
  if (options_.trace != nullptr) {
    obs::TraceEvent event = TraceContext();
    event.kind = obs::TraceEventKind::kRoundStart;
    event.round_budget = round_budget_;
    Emit(event);
  }
  span_ = SpanContext{};
  if (options_.emit_spans && options_.trace != nullptr) {
    span_.open = true;
    span_.trace_id = obs::RoundTraceId(options_.node, rounds_);
    span_.root = obs::RootSpanId(span_.trace_id);
  }
  // Device events emitted while servicing this round carry the in-round
  // simulated clock instead of the device busy clock (exporters place them
  // on the shared timeline).
  store_->disk().set_time_hint(&now);

  int64_t transferred_total = 0;
  if (options_.service_order == ServiceOrder::kPlanned) {
    transferred_total = ExecutePlannedRound(&now);
  } else {
    // Section 6.2 SCAN option: service this round's requests in
    // disk-position order, shrinking the inter-request repositioning cost.
    std::vector<RequestId> round_order(service_order_.begin(), service_order_.end());
    if (options_.service_order == ServiceOrder::kSeekScan) {
      std::sort(round_order.begin(), round_order.end(), [this](RequestId a, RequestId b) {
        return NextSector(RequestAt(a)) < NextSector(RequestAt(b));
      });
    }
    for (RequestId id : round_order) {
      ActiveRequest& request = RequestAt(id);
      if (request.stats.completed || request.stats.paused) {
        continue;
      }
      if (request.stats.start_time < 0) {
        request.stats.start_time = now;
      }
      const SimTime service_start = now;
      const obs::SpanStage stage =
          request.playback.has_value() ? TransferStageFor(request) : obs::SpanStage::kAppend;
      const uint64_t span_id = OpenTransferSpan(stage, id, /*member=*/-1);
      const int64_t transferred = request.playback.has_value()
                                      ? ServicePlayback(&request, &now)
                                      : ServiceRecording(&request, &now, current_k_);
      transferred_total += transferred;
      if (now > service_start) {
        EmitSpan(stage, span_id, span_.root, now, now - service_start, id, /*member=*/-1,
                 span_.active_seek, transferred, /*sector=*/0);
      }
      if (options_.trace != nullptr) {
        obs::TraceEvent event = TraceContext();
        event.kind = obs::TraceEventKind::kRequestServiced;
        event.time = now;
        event.request = id;
        event.blocks = transferred;
        event.duration = now - service_start;
        event.round_budget = round_budget_;
        event.block_playback = request.playback.has_value()
                                   ? EffectiveBlockDuration(*request.playback)
                                   : RecordingBlockDuration(*request.recording);
        Emit(event);
      }
    }
  }
  store_->disk().set_time_hint(nullptr);
  if (span_.open) {
    // Close the round's root span. Every `now` advance above was charged
    // to exactly one stage; the queue stage absorbs any residual, so the
    // ledger partitions the measured duration (the auditor and
    // check_criticalpath.py enforce this within kStageSumEpsilonUsec).
    const SimDuration duration = now - round_start;
    const SimDuration charged = span_.stages.Total();
    if (duration > charged) {
      span_.stages.queue += duration - charged;
    }
    obs::TraceEvent event = TraceContext();
    obs::StampSpan(&event, span_.trace_id, span_.root, /*parent_span=*/0,
                   obs::SpanStage::kRound);
    event.time = now;
    event.duration = duration;
    event.blocks = transferred_total;
    event.round_budget = round_budget_;
    event.stages = span_.stages;
    Emit(event);
    span_.open = false;
  }
  if (options_.trace != nullptr) {
    obs::TraceEvent event = TraceContext();
    event.kind = obs::TraceEventKind::kRoundEnd;
    event.time = now;
    event.duration = now - round_start;
    event.blocks = transferred_total;
    event.round_budget = round_budget_;
    Emit(event);
  }
  simulator_->RunUntil(now);  // account the disk time this round consumed

  // Drop completed requests from the rotation, then retire their slots:
  // stats move to finished_stats_, the slot returns to the free list, and
  // the planner forgets their cached runs. Lazy (round-edge only) so that
  // mid-round completions stay addressable until every rider settles.
  std::erase_if(service_order_, [this](RequestId id) {
    return RequestAt(id).stats.completed;
  });
  RetireCompletedRequests();

  const bool have_work =
      !pending_.empty() ||
      std::any_of(service_order_.begin(), service_order_.end(), [this](RequestId id) {
        return !RequestAt(id).stats.paused;
      });
  if (!have_work) {
    return;
  }
  if (transferred_total > 0) {
    ScheduleRound();
    return;
  }
  // The round moved no data (buffers full, capture not ready): sleep until
  // the earliest instant more work exists instead of spinning.
  SimTime wake = -1;
  for (RequestId id : service_order_) {
    const ActiveRequest& request = RequestAt(id);
    if (request.stats.completed || request.stats.paused) {
      continue;
    }
    SimTime candidate = -1;
    if (request.playback.has_value() && request.consumer != nullptr) {
      candidate = request.consumer->NextDrainAfter(now);
    } else if (request.recording.has_value() && request.producer != nullptr) {
      candidate = request.producer->CaptureEnd(request.stats.blocks_done);
    }
    if (candidate >= 0 && (wake < 0 || candidate < wake)) {
      wake = candidate;
    }
  }
  if (wake < 0) {
    wake = now + 1000;  // defensive: never stall the rotation entirely
  }
  round_scheduled_ = true;
  simulator_->ScheduleAt(wake, [this] { RunRound(); });
}

Status ServiceScheduler::Stop(RequestId id) {
  ActiveRequest* found = FindRequest(id);
  if (found == nullptr) {
    if (finished_stats_.count(id) > 0) {
      return Status::Ok();  // already completed and retired
    }
    return Status(ErrorCode::kNotFound, "request " + std::to_string(id));
  }
  ActiveRequest& request = *found;
  if (request.stats.completed) {
    return Status::Ok();
  }
  // A stopped recording keeps what it captured so far; one that never wrote
  // a block is aborted outright (destroying the writer returns any
  // allocated extents), leaving no half-created strand behind.
  if (request.writer != nullptr) {
    if (request.stats.blocks_done > 0) {
      const int64_t units =
          request.stats.blocks_done * request.recording->placement.granularity;
      Result<StrandId> finished = request.writer->Finish(units);
      if (finished.ok()) {
        request.stats.recorded_strand = *finished;
      }
    }
    request.writer.reset();
  }
  if (request.producer != nullptr) {
    request.stats.capture_overflows = request.producer->overflows();
    request.producer.reset();
  }
  UnpinPreludePages(&request);
  FoldConsumer(request.consumer.get(), &request.stats);
  request.consumer.reset();
  WithSlotUpdate(request, [this, &request] {
    request.stats.completed = true;
    request.stats.completion_time = simulator_->Now();
    request.pending = false;
  });
  std::erase(service_order_, id);
  std::erase_if(pending_, [id](const PendingAdmission& p) { return p.id == id; });
  obs::TraceEvent event = TraceContext();
  event.kind = obs::TraceEventKind::kStop;
  event.request = id;
  event.blocks = request.stats.blocks_done;
  Emit(event);
  return Status::Ok();
}

Status ServiceScheduler::Pause(RequestId id, bool destructive) {
  ActiveRequest* found = FindRequest(id);
  if (found == nullptr) {
    if (finished_stats_.count(id) > 0) {
      return Status(ErrorCode::kFailedPrecondition, "request not running");
    }
    return Status(ErrorCode::kNotFound, "request " + std::to_string(id));
  }
  ActiveRequest& request = *found;
  if (request.stats.completed || request.stats.paused) {
    return Status(ErrorCode::kFailedPrecondition, "request not running");
  }
  WithSlotUpdate(request, [&request, destructive] {
    request.stats.paused = true;
    request.destructively_paused = destructive;
    if (destructive) {
      request.pending = false;  // leaves pending_ below
    }
  });
  // Deadlines do not survive a pause: fold what the consumer saw and
  // restart the anti-jitter prelude on resume.
  UnpinPreludePages(&request);
  FoldConsumer(request.consumer.get(), &request.stats);
  request.consumer.reset();
  request.prelude_ready_times.clear();
  if (destructive) {
    // The slot is released now: leave the rotation and any pending k ramp,
    // and let the remaining slot holders settle to a smaller k. A revoked
    // cache tenant held no slot, so it releases nothing — shrinking k for
    // it would hand the rotation a release that never happened.
    std::erase(service_order_, id);
    std::erase_if(pending_, [id](const PendingAdmission& p) { return p.id == id; });
    if (!request.stats.cache_admitted) {
      Result<int64_t> k = admission_.TransientSafeBlocksPerRound(SlotHolderSpecs());
      if (k.ok() && *k < current_k_) {
        current_k_ = *k;
      }
    }
  }
  obs::TraceEvent event = TraceContext();
  event.kind = obs::TraceEventKind::kPause;
  event.request = id;
  event.destructive = destructive;
  Emit(event);
  return Status::Ok();
}

Status ServiceScheduler::Resume(RequestId id) {
  ActiveRequest* found = FindRequest(id);
  if (found == nullptr) {
    if (finished_stats_.count(id) > 0) {
      return Status(ErrorCode::kFailedPrecondition, "request not paused");
    }
    return Status(ErrorCode::kNotFound, "request " + std::to_string(id));
  }
  ActiveRequest& request = *found;
  if (request.stats.completed || !request.stats.paused) {
    return Status(ErrorCode::kFailedPrecondition, "request not paused");
  }
  if (!request.destructively_paused) {
    WithSlotUpdate(request, [&request] { request.stats.paused = false; });
    obs::TraceEvent event = TraceContext();
    event.kind = obs::TraceEventKind::kResume;
    event.request = id;
    Emit(event);
    ScheduleRound();
    return Status::Ok();
  }
  // Destructive pause released the slot: re-run admission control. The
  // resuming request holds no slot, so SlotHolderSpecs excludes it — it is
  // presented only once, as the candidate.
  const RequestSpec spec = request.playback.has_value() ? request.playback->spec
                                                        : request.recording->Spec();
  Result<std::vector<int64_t>> schedule =
      admission_.PlanAdmission(SlotHolderSpecs(), spec, current_k_);
  bool cache_admit = false;
  double coverage = 0.0;
  if (!schedule.ok() && request.playback.has_value() && CacheAdmissionEnabled()) {
    coverage = ExpectedCacheCoverage(*request.playback, request.next_block);
    if (coverage + 1e-9 >= options_.cache_admission_min_hit_rate) {
      cache_admit = true;
      int64_t rotation_k = current_k_;
      for (const PendingAdmission& waiting : pending_) {
        rotation_k = std::max(rotation_k, waiting.k_schedule.back());
      }
      schedule = std::vector<int64_t>{rotation_k};
    }
  }
  if (!schedule.ok()) {
    obs::TraceEvent event = TraceContext();
    event.kind = obs::TraceEventKind::kResumeRejected;
    event.request = id;
    event.detail = schedule.status().message();
    Emit(event);
    return schedule.status();
  }
  WithSlotUpdate(request, [&request, cache_admit] { request.stats.cache_admitted = cache_admit; });
  if (cache_admit) {
    // Emitted while still paused, so the attached slot snapshot agrees
    // with the replayed lifecycle.
    obs::TraceEvent event = TraceContext();
    event.kind = obs::TraceEventKind::kCacheAdmit;
    event.request = id;
    event.cache_hit_rate = coverage;
    event.detail = "expected coverage " + std::to_string(coverage);
    Emit(event);
  }
  WithSlotUpdate(request, [&request] {
    request.stats.paused = false;
    request.destructively_paused = false;
    request.pending = true;  // joins pending_ below
  });
  PendingAdmission pending;
  pending.id = id;
  pending.k_schedule.assign(schedule->begin(), schedule->end());
  pending_.push_back(std::move(pending));  // rejoin through the pending queue
  obs::TraceEvent event = TraceContext();
  event.kind = obs::TraceEventKind::kResume;
  event.request = id;
  event.destructive = true;
  Emit(event);
  ScheduleRound();
  return Status::Ok();
}

int64_t ServiceScheduler::NextSector(const ActiveRequest& request) const {
  if (request.playback.has_value()) {
    const auto& blocks = request.playback->blocks;
    for (int64_t b = request.next_block; b < static_cast<int64_t>(blocks.size()); ++b) {
      if (!blocks[static_cast<size_t>(b)].IsSilence()) {
        return blocks[static_cast<size_t>(b)].sector;
      }
    }
    return 0;
  }
  if (request.writer != nullptr && request.writer->previous_end_sector() >= 0) {
    return request.writer->previous_end_sector();
  }
  return 0;
}

void ServiceScheduler::RunUntilIdle() { simulator_->Run(); }

Result<RequestStats> ServiceScheduler::stats(RequestId id) const {
  const ActiveRequest* found = FindRequest(id);
  if (found == nullptr) {
    // Completed requests outlive their slot; their final stats are kept in
    // the retirement ledger so callers can still read them after the round
    // edge recycled the slot.
    auto finished = finished_stats_.find(id);
    if (finished != finished_stats_.end()) {
      return finished->second;
    }
    return Status(ErrorCode::kNotFound, "request " + std::to_string(id));
  }
  RequestStats stats = found->stats;
  // Live requests report the consumer's running totals too.
  FoldConsumer(found->consumer.get(), &stats);
  if (found->producer != nullptr) {
    stats.capture_overflows = found->producer->overflows();
  }
  return stats;
}

int64_t ServiceScheduler::active_request_count() const {
  return static_cast<int64_t>(service_order_.size());
}

}  // namespace vafs
