#include "src/msm/session_manager.h"

#include <algorithm>
#include <utility>

#include "src/util/time.h"

namespace vafs {

SessionManager::SessionManager(ServiceScheduler* scheduler, Simulator* simulator,
                               BlockCache* cache, obs::TraceSink* trace, SessionOptions options)
    : scheduler_(scheduler),
      simulator_(simulator),
      cache_(cache),
      trace_(trace),
      options_(options) {}

void SessionManager::Emit(obs::TraceEventKind kind, const Session& session,
                          int64_t runway) const {
  if (trace_ == nullptr) {
    return;
  }
  obs::TraceEvent event;
  event.kind = kind;
  event.time = simulator_->Now();
  event.session = session.ticket.session;
  event.leader = session.ticket.request;
  event.request = session.ticket.patch_request;
  event.gap_blocks = session.ticket.gap_blocks;
  event.runway_blocks = runway;
  trace_->OnEvent(event);
}

int64_t SessionManager::LeaderBlocksDone(RequestId leader) const {
  Result<RequestStats> stats = scheduler_->stats(leader);
  return stats.ok() ? stats->blocks_done : 0;
}

void SessionManager::PinLeaderTrail(const Group& group, int64_t leader_pos, int64_t rider_start,
                                    Session* session) {
  if (!options_.pin_leader_trail || cache_ == nullptr || !cache_->enabled()) {
    return;
  }
  // The rider missed the leader's deliveries between its own start and the
  // leader's position; keep the most recent of them resident until the
  // rider (or its patch) consumes them. Indices translate to the leader's
  // block space (its playback may itself start mid-title).
  const int64_t gap = leader_pos - group.leader_start;
  const int64_t first = std::max({int64_t{0}, rider_start - group.leader_start,
                                  gap - options_.trail_pin_limit});
  for (int64_t i = first; i < gap && i < static_cast<int64_t>(group.blocks.size()); ++i) {
    const PrimaryEntry& entry = group.blocks[static_cast<size_t>(i)];
    if (entry.IsSilence()) {
      continue;
    }
    if (cache_->Pin(entry.sector, entry.sector_count)) {
      session->pinned.emplace_back(entry.sector, entry.sector_count);
    }
  }
}

void SessionManager::UnpinTrail(Session* session) {
  if (cache_ != nullptr) {
    for (const auto& [sector, sectors] : session->pinned) {
      cache_->Unpin(sector, sectors);
    }
  }
  session->pinned.clear();
}

Result<SessionTicket> SessionManager::Open(uint64_t title, PlaybackRequest solo,
                                           int64_t start_block) {
  const int64_t total = static_cast<int64_t>(solo.blocks.size());
  Group* group = nullptr;
  if (auto live = live_group_.find(title); live != live_group_.end()) {
    auto it = groups_.find(live->second);
    if (it != groups_.end() && !it->second.closed) {
      group = &it->second;
    }
  }
  if (group != nullptr) {
    // Everything in absolute title-block space: the leader's playback may
    // itself start mid-title (a failed-over viewer turned leader).
    const int64_t leader_pos = group->leader_start + LeaderBlocksDone(group->leader);
    const int64_t leader_end = group->leader_start + group->leader_total;
    const int64_t gap = leader_pos - start_block;  // rider's distance behind
    const int64_t remaining = leader_end - leader_pos;
    const bool in_window =
        simulator_->Now() - group->opened <= SecondsToUsec(options_.batch_window_sec);
    // Riding only makes sense while the leader is at or past the rider's
    // start and still has the rider's whole remainder ahead of it.
    if (remaining > 0 && gap >= 0 && total > gap && start_block + total <= leader_end) {
      if (in_window || gap == 0) {
        Session session;
        session.ticket.session = next_session_++;
        session.ticket.mode = SessionTicket::Mode::kBatched;
        session.ticket.title = title;
        session.ticket.request = group->leader;
        session.ticket.gap_blocks = gap;
        session.ticket.start_block = start_block;
        PinLeaderTrail(*group, leader_pos, start_block, &session);
        Emit(obs::TraceEventKind::kSessionBatched, session,
             static_cast<int64_t>(session.pinned.size()));
        group->sessions.push_back(session.ticket.session);
        ++census_.viewers;
        ++census_.batched;
        const SessionTicket ticket = session.ticket;
        sessions_.emplace(ticket.session, std::move(session));
        return ticket;
      }
      if (options_.max_patch_blocks > 0 && gap <= options_.max_patch_blocks) {
        // Catch-up patch: a regular short-lived stream over the missed
        // prefix, admission-checked like any other (Eq. 17 tenant).
        PlaybackRequest patch = solo;
        patch.blocks.resize(static_cast<size_t>(gap));
        patch.read_ahead_blocks = 1;  // start immediately; the gap is the runway
        Result<RequestId> patch_id = scheduler_->SubmitPlayback(std::move(patch));
        if (patch_id.ok()) {
          // Section 3 buffering bound on the rider's banked runway: the
          // leader cannot hand it more than it has left, and an explicit
          // margin (when configured) claims gap + margin instead.
          int64_t bound = remaining;
          if (options_.runway_margin_blocks > 0) {
            bound = std::min(bound, gap + options_.runway_margin_blocks);
          }
          Session session;
          session.ticket.session = next_session_++;
          session.ticket.mode = SessionTicket::Mode::kPatched;
          session.ticket.title = title;
          session.ticket.request = group->leader;
          session.ticket.patch_request = *patch_id;
          session.ticket.gap_blocks = gap;
          session.ticket.runway_bound = bound;
          session.ticket.start_block = start_block;
          // The catch-up stream's transfers charge the round ledger's
          // merge_patch stage, so critical-path verdicts can name a round
          // as patch-bound.
          scheduler_->set_merge_patch(*patch_id, true);
          PinLeaderTrail(*group, leader_pos, start_block, &session);
          Emit(obs::TraceEventKind::kSessionPatched, session, bound);
          group->sessions.push_back(session.ticket.session);
          patch_index_[*patch_id] = session.ticket.session;
          ++census_.viewers;
          ++census_.patched;
          const SessionTicket ticket = session.ticket;
          sessions_.emplace(ticket.session, std::move(session));
          return ticket;
        }
        // Patch rejected (no slot for even the short stream): fall through
        // and try a full solo stream — it may still be admissible later in
        // the rotation, and a leader admits future riders.
      }
    }
  }
  std::vector<PrimaryEntry> blocks = solo.blocks;  // survives the submit
  Result<RequestId> leader_id = scheduler_->SubmitPlayback(std::move(solo));
  if (!leader_id.ok()) {
    return leader_id.status();
  }
  Group fresh;
  fresh.title = title;
  fresh.leader = *leader_id;
  fresh.opened = simulator_->Now();
  fresh.leader_start = start_block;
  fresh.leader_total = total;
  fresh.blocks = std::move(blocks);
  Session session;
  session.ticket.session = next_session_++;
  session.ticket.mode = SessionTicket::Mode::kLeader;
  session.ticket.title = title;
  session.ticket.request = *leader_id;
  session.ticket.start_block = start_block;
  fresh.sessions.push_back(session.ticket.session);
  groups_[*leader_id] = std::move(fresh);
  live_group_[title] = *leader_id;
  ++census_.viewers;
  ++census_.leaders;
  const SessionTicket ticket = session.ticket;
  sessions_.emplace(ticket.session, std::move(session));
  return ticket;
}

void SessionManager::MarkDegraded(Session* session) {
  // Exactly-once accounting: a rider can lose its leader and its patch in
  // the same round (one CollapsedCacheAdmissions pass revokes both), and
  // each path lands here.
  if (!session->degraded) {
    session->degraded = true;
    ++census_.degraded;
  }
}

bool SessionManager::PatchStillRunning(const Session& session) const {
  if (session.ticket.patch_request == 0) {
    return false;
  }
  Result<RequestStats> stats = scheduler_->stats(session.ticket.patch_request);
  if (!stats.ok() || stats->completed) {
    return false;
  }
  // A paused patch only counts as alive while a deferred resume is still
  // in flight for it.
  return !stats->paused || session.resume_pending;
}

void SessionManager::CloseGroup(Group* group, bool completed) {
  if (group->closed) {
    return;
  }
  group->closed = true;
  for (uint64_t id : group->sessions) {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      continue;
    }
    Session& session = it->second;
    if (session.ticket.mode == SessionTicket::Mode::kPatched && !session.merged) {
      // Deliveries after attach the rider still needed: from its attach
      // position (start + gap, absolute) to the leader's end.
      const int64_t tail = group->leader_start + group->leader_total -
                           session.ticket.start_block - session.ticket.gap_blocks;
      if (completed && !session.degraded && session.ticket.runway_bound >= tail) {
        // The leader delivered the whole title and the rider's runway holds
        // its entire tail; only the catch-up patch is still running. Leave
        // the session open — it merges (or degrades) when the patch ends.
        continue;
      }
      // The leader died under the patch (stop, destructive pause, or a
      // cache-admission revocation) or its remaining deliveries overflowed
      // a capped runway: the shared tail is gone. The rider degrades to a
      // solo stream — its patch keeps delivering the prefix standalone —
      // and the trail pins are released exactly once (UnpinTrail clears the
      // ledger, so the later patch-termination path cannot release them a
      // second time).
      MarkDegraded(&session);
      UnpinTrail(&session);
      if (PatchStillRunning(session)) {
        // The session finishes when its solo patch completes or dies.
        continue;
      }
    }
    UnpinTrail(&session);
    session.finished = true;
    if (session.ticket.patch_request != 0) {
      patch_index_.erase(session.ticket.patch_request);
    }
  }
  if (auto live = live_group_.find(group->title);
      live != live_group_.end() && live->second == group->leader) {
    live_group_.erase(live);
  }
}

void SessionManager::HandlePatchGone(Session* session, bool try_resume) {
  if (session->merged || session->finished) {
    return;
  }
  if (try_resume && !session->resume_pending) {
    // One deferred re-application: the pause may be transient (the slot
    // freed again by the time the next event runs). Scheduled instead of
    // called inline — the pause is still being emitted up the tee. A
    // session already degraded by its leader's revocation still gets the
    // attempt: degrading to solo means the patch stream should keep
    // delivering if admission allows.
    session->resume_pending = true;
    const RequestId patch = session->ticket.patch_request;
    const uint64_t id = session->ticket.session;
    simulator_->ScheduleAfter(0, [this, patch, id]() {
      auto it = sessions_.find(id);
      if (it == sessions_.end() || it->second.merged || it->second.finished) {
        return;
      }
      it->second.resume_pending = false;
      if (!scheduler_->Resume(patch).ok()) {
        // Resume exhausted: the rider is done for.
        MarkDegraded(&it->second);
        UnpinTrail(&it->second);
        it->second.finished = true;
        patch_index_.erase(patch);
      }
    });
    return;
  }
  MarkDegraded(session);
  UnpinTrail(session);
  session->finished = true;
  patch_index_.erase(session->ticket.patch_request);
}

void SessionManager::OnEvent(const obs::TraceEvent& event) {
  switch (event.kind) {
    case obs::TraceEventKind::kCompleted: {
      if (auto pit = patch_index_.find(event.request); pit != patch_index_.end()) {
        Session& session = sessions_.at(pit->second);
        if (!session.merged && !session.degraded) {
          // The patch closed its gap: the rider now follows the leader,
          // holding the leader's deliveries it banked while catching up.
          session.merged = true;
          ++census_.merged;
          UnpinTrail(&session);
          // Realized runway: leader deliveries since the rider attached,
          // in absolute title-block space.
          int64_t leader_start = 0;
          if (auto git = groups_.find(session.ticket.request); git != groups_.end()) {
            leader_start = git->second.leader_start;
          }
          const int64_t realized =
              std::max<int64_t>(0, leader_start + LeaderBlocksDone(session.ticket.request) -
                                       session.ticket.start_block - session.ticket.gap_blocks);
          Emit(obs::TraceEventKind::kSessionMerged, session, realized);
          if (auto git = groups_.find(session.ticket.request);
              git != groups_.end() && git->second.closed) {
            // Merged after the leader already completed: the rider plays
            // out of its banked runway, nothing left to observe.
            session.finished = true;
          }
        } else if (session.degraded && !session.finished) {
          // Degraded-to-solo rider: its patch delivered the prefix it could;
          // the session ends with it (pins were already released when the
          // leader went down — UnpinTrail cleared the ledger, so this is a
          // no-op, never a second release).
          UnpinTrail(&session);
          session.finished = true;
        }
        // The patch stream is terminal either way; stop indexing it so a
        // late Stop/Pause event for a recycled id cannot touch this session.
        patch_index_.erase(pit);
        break;
      }
      if (auto git = groups_.find(event.request); git != groups_.end()) {
        CloseGroup(&git->second, /*completed=*/true);
      }
      break;
    }
    case obs::TraceEventKind::kStop: {
      if (auto pit = patch_index_.find(event.request); pit != patch_index_.end()) {
        HandlePatchGone(&sessions_.at(pit->second), /*try_resume=*/false);
        break;
      }
      if (auto git = groups_.find(event.request); git != groups_.end()) {
        CloseGroup(&git->second, /*completed=*/false);
      }
      break;
    }
    case obs::TraceEventKind::kPause: {
      if (!event.destructive) {
        break;
      }
      if (auto pit = patch_index_.find(event.request); pit != patch_index_.end()) {
        HandlePatchGone(&sessions_.at(pit->second), /*try_resume=*/true);
        break;
      }
      if (auto git = groups_.find(event.request); git != groups_.end()) {
        CloseGroup(&git->second, /*completed=*/false);
      }
      break;
    }
    case obs::TraceEventKind::kResume:
      if (auto pit = patch_index_.find(event.request); pit != patch_index_.end()) {
        sessions_.at(pit->second).resume_pending = false;  // re-applied; re-arm
      }
      break;
    case obs::TraceEventKind::kRecovery:
      // Every request (leaders and patches alike) died with the crash; the
      // cache was invalidated wholesale, so no pins survive to release.
      groups_.clear();
      live_group_.clear();
      sessions_.clear();
      patch_index_.clear();
      break;
    default:
      break;  // session events (our own) and everything else
  }
}

void SessionManager::Rebind(ServiceScheduler* scheduler) {
  scheduler_ = scheduler;
  groups_.clear();
  live_group_.clear();
  sessions_.clear();
  patch_index_.clear();
}

int64_t SessionManager::LiveViewers() const {
  int64_t live = 0;
  for (const auto& [id, session] : sessions_) {
    if (!session.finished && !session.degraded) {
      ++live;
    }
  }
  return live;
}

}  // namespace vafs
