// Strand: an immutable sequence of continuously recorded media blocks.
//
// "A strand is an immutable sequence of continuously recorded audio
// samples or video frames" (Section 2). Immutability simplifies garbage
// collection and makes rope editing pure pointer manipulation. A strand
// couples its media description (rate, unit size, granularity), its
// placement contract (scattering bounds) and its 3-level index.

#ifndef VAFS_SRC_MSM_STRAND_H_
#define VAFS_SRC_MSM_STRAND_H_

#include <cstdint>

#include "src/layout/strand_index.h"
#include "src/media/media.h"
#include "src/util/time.h"
#include "src/util/units.h"

namespace vafs {

using StrandId = uint64_t;
inline constexpr StrandId kNullStrand = 0;

// Immutable description of a finished strand.
struct StrandInfo {
  StrandId id = kNullStrand;
  Medium medium = Medium::kVideo;
  double recording_rate = 0.0;      // units/sec (R_v or R_a)
  int64_t bits_per_unit = 0;        // s_vf or s_as
  int64_t granularity = 1;          // q: units per media block
  int64_t unit_count = 0;           // total recorded units (incl. silence)
  double min_scattering_sec = 0.0;  // placement contract lower bound
  double max_scattering_sec = 0.0;  // placement contract upper bound

  MediaProfile Profile() const {
    return MediaProfile{medium, recording_rate, bits_per_unit};
  }

  // Playback duration of one block in simulated time.
  SimDuration BlockDuration() const {
    return SecondsToUsec(static_cast<double>(granularity) / recording_rate);
  }

  // Bytes in a (full) media block.
  int64_t BlockBytes() const { return BitsToBytesCeil(granularity * bits_per_unit); }

  // Total playback duration in seconds.
  double DurationSec() const { return static_cast<double>(unit_count) / recording_rate; }
};

// A finished strand: info plus its index. Strands are immutable once the
// writer finishes them; the store hands out const access only.
class Strand {
 public:
  Strand(StrandInfo info, StrandIndex index) : info_(info), index_(std::move(index)) {}

  const StrandInfo& info() const { return info_; }
  const StrandIndex& index() const { return index_; }

  int64_t block_count() const { return index_.block_count(); }

  // Units stored in block `block_number` (the tail block may be partial).
  int64_t UnitsInBlock(int64_t block_number) const {
    const int64_t start = block_number * info_.granularity;
    const int64_t remaining = info_.unit_count - start;
    return remaining < info_.granularity ? remaining : info_.granularity;
  }

 private:
  StrandInfo info_;
  StrandIndex index_;
};

}  // namespace vafs

#endif  // VAFS_SRC_MSM_STRAND_H_
