// Scattering maintenance while editing (Section 4.2).
//
// Editing stitches intervals of different strands together. Inside an
// interval the scattering bound holds; at the seam between interval [.,a_l]
// of strand S_a and interval [b_f,.] of strand S_b the hop can be
// arbitrarily long. The repair copies a bounded prefix of S_b's interval
// (or suffix of S_a's) into freshly allocated blocks that walk from the
// seam back under the bound: block b_f lands within the scattering window
// of a_l, b_f+1 within the window of the new b_f, and so on until the copy
// chain reaches a point from which the *original* placement of the next
// block already satisfies the bound. Eqs. 19-20 bound the chain length by
// C_b = l_seek_max / (2 * l_ds_lower) (sparse disk) and l_seek_max /
// l_ds_lower (dense).
//
// Because strands are immutable, the copied blocks form a brand-new strand
// with its own ID; the edited rope references [new strand] + [b_f+C ..] of
// the original.

#ifndef VAFS_SRC_MSM_SCATTERING_REPAIR_H_
#define VAFS_SRC_MSM_SCATTERING_REPAIR_H_

#include <cstdint>

#include "src/msm/strand_store.h"
#include "src/util/result.h"

namespace vafs {

struct RepairOutcome {
  // No repair was needed: the seam already satisfied the bound.
  bool already_continuous = false;
  // Strand holding the copied blocks (kNullStrand if none were needed).
  StrandId copy_strand = kNullStrand;
  // How many leading blocks of the following interval were copied; the
  // edited rope must reference copy_strand for these, then the original
  // from block `following_first_block + blocks_copied` on.
  int64_t blocks_copied = 0;
  // Simulated disk time spent on the copy (reads + writes).
  SimDuration copy_time = 0;
  // A disk fault cut the copy chain short. The blocks copied before the
  // fault are preserved (finished into copy_strand when any exist), so the
  // caller can splice the partial progress and resume from block
  // `following_first_block + blocks_copied` later — re-checking the new
  // seam finds it either healed or shorter. `fault` carries the device
  // error; everything else about the outcome stays valid.
  bool interrupted = false;
  Status fault = Status::Ok();
};

// Checks the seam between block `preceding_last_block` of `preceding` and
// block `following_first_block` of `following`, and repairs it by copying
// if the positioning gap exceeds the following strand's scattering bound.
// `following_blocks_available` limits how many blocks of the following
// interval may be consumed by the chain (the interval's length).
Result<RepairOutcome> RepairSeam(StrandStore* store, StrandId preceding,
                                 int64_t preceding_last_block, StrandId following,
                                 int64_t following_first_block,
                                 int64_t following_blocks_available);

// The gap (in seconds) a playback would pay hopping across the seam; the
// quantity RepairSeam compares against the scattering bound.
Result<double> SeamGapSec(StrandStore* store, StrandId preceding, int64_t preceding_last_block,
                          StrandId following, int64_t following_first_block);

// Relocation of defective blocks: copies `block_count` blocks of `strand`
// starting at `first_block` into a fresh strand, reading the originals via
// the disk's salvage path (immune to injected faults, at the configured
// cost multiplier). The copy anchors next to the original neighborhood so
// the strand's scattering contract still holds across the splice. Strands
// are immutable, so callers (the rope layer) must re-point their interval
// at the returned strand; the defective extents stay with the original.
struct BlockRelocationOutcome {
  StrandId copy_strand = kNullStrand;
  int64_t blocks_copied = 0;
  SimDuration copy_time = 0;
};
Result<BlockRelocationOutcome> RelocateBlocks(StrandStore* store, StrandId strand,
                                              int64_t first_block, int64_t block_count);

}  // namespace vafs

#endif  // VAFS_SRC_MSM_SCATTERING_REPAIR_H_
