#include "src/rope/rope.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace vafs {

int64_t Track::TotalUnits() const {
  int64_t total = 0;
  for (const TrackSegment& segment : segments) {
    total += segment.unit_count;
  }
  return total;
}

int64_t Track::UnitsAt(double seconds) const {
  assert(rate > 0);
  return static_cast<int64_t>(std::llround(seconds * rate));
}

bool AccessControl::AllowsPlay(const std::string& user, const std::string& creator) const {
  if (user == creator || play_users.empty()) {
    return true;
  }
  return std::find(play_users.begin(), play_users.end(), user) != play_users.end();
}

bool AccessControl::AllowsEdit(const std::string& user, const std::string& creator) const {
  if (user == creator || edit_users.empty()) {
    return true;
  }
  return std::find(edit_users.begin(), edit_users.end(), user) != edit_users.end();
}

double Rope::LengthSec() const { return std::max(video_.DurationSec(), audio_.DurationSec()); }

void AppendSegment(Track* track, TrackSegment segment) {
  if (segment.unit_count <= 0) {
    return;
  }
  if (!track->segments.empty()) {
    TrackSegment& tail = track->segments.back();
    const bool contiguous_strand = !tail.IsGap() && tail.strand == segment.strand &&
                                   tail.start_unit + tail.unit_count == segment.start_unit;
    const bool both_gaps = tail.IsGap() && segment.IsGap();
    if (contiguous_strand || both_gaps) {
      tail.unit_count += segment.unit_count;
      return;
    }
  }
  track->segments.push_back(segment);
}

std::vector<TrackSegment> SliceTrack(const Track& track, int64_t start_unit, int64_t count) {
  assert(start_unit >= 0 && count >= 0);
  std::vector<TrackSegment> result;
  int64_t position = 0;
  const int64_t end_unit = start_unit + count;
  for (const TrackSegment& segment : track.segments) {
    const int64_t seg_begin = position;
    const int64_t seg_end = position + segment.unit_count;
    position = seg_end;
    const int64_t overlap_begin = std::max(seg_begin, start_unit);
    const int64_t overlap_end = std::min(seg_end, end_unit);
    if (overlap_begin >= overlap_end) {
      continue;
    }
    TrackSegment piece;
    piece.strand = segment.strand;
    piece.start_unit = segment.IsGap() ? 0 : segment.start_unit + (overlap_begin - seg_begin);
    piece.unit_count = overlap_end - overlap_begin;
    result.push_back(piece);
  }
  return result;
}

namespace {

// Rebuilds a track's segments from slices, re-merging adjacencies.
void Rebuild(Track* track, const std::vector<std::vector<TrackSegment>>& parts) {
  std::vector<TrackSegment> original = std::move(track->segments);
  track->segments.clear();
  for (const std::vector<TrackSegment>& part : parts) {
    for (const TrackSegment& segment : part) {
      AppendSegment(track, segment);
    }
  }
  (void)original;
}

}  // namespace

namespace {

// Track surgery is total: ranges are clamped to the track, so editing a
// rope whose media have different lengths (LengthSec is their max) can
// never address units a shorter track does not have.
void ClampRange(const Track& track, int64_t* start_unit, int64_t* count) {
  const int64_t total = track.TotalUnits();
  *start_unit = std::clamp<int64_t>(*start_unit, 0, total);
  *count = std::clamp<int64_t>(*count, 0, total - *start_unit);
}

}  // namespace

void EraseRange(Track* track, int64_t start_unit, int64_t count) {
  ClampRange(*track, &start_unit, &count);
  const int64_t total = track->TotalUnits();
  std::vector<TrackSegment> prefix = SliceTrack(*track, 0, start_unit);
  std::vector<TrackSegment> suffix =
      SliceTrack(*track, start_unit + count, total - (start_unit + count));
  Rebuild(track, {prefix, suffix});
}

void BlankRange(Track* track, int64_t start_unit, int64_t count) {
  ClampRange(*track, &start_unit, &count);
  const int64_t total = track->TotalUnits();
  std::vector<TrackSegment> prefix = SliceTrack(*track, 0, start_unit);
  std::vector<TrackSegment> suffix =
      SliceTrack(*track, start_unit + count, total - (start_unit + count));
  std::vector<TrackSegment> gap;
  if (count > 0) {
    gap.push_back(TrackSegment{kNullStrand, 0, count});
  }
  Rebuild(track, {prefix, gap, suffix});
}

void InsertSegments(Track* track, int64_t start_unit,
                    const std::vector<TrackSegment>& segments) {
  const int64_t total = track->TotalUnits();
  start_unit = std::clamp<int64_t>(start_unit, 0, total);
  std::vector<TrackSegment> prefix = SliceTrack(*track, 0, start_unit);
  std::vector<TrackSegment> suffix = SliceTrack(*track, start_unit, total - start_unit);
  Rebuild(track, {prefix, segments, suffix});
}

namespace {

// Locates the (strand, absolute unit) under a track-relative unit offset.
struct TrackPosition {
  StrandId strand = kNullStrand;
  int64_t strand_unit = 0;  // absolute unit within the strand
};

TrackPosition Locate(const Track& track, int64_t unit) {
  int64_t position = 0;
  for (const TrackSegment& segment : track.segments) {
    if (unit < position + segment.unit_count) {
      TrackPosition result;
      result.strand = segment.strand;
      result.strand_unit = segment.IsGap() ? 0 : segment.start_unit + (unit - position);
      return result;
    }
    position += segment.unit_count;
  }
  return TrackPosition{};
}

}  // namespace

std::vector<SyncInterval> Rope::SynchronizationInfo() const {
  // Boundary instants: every segment edge of either track, in seconds.
  std::vector<double> boundaries;
  boundaries.push_back(0.0);
  for (const Track* track : {&video_, &audio_}) {
    if (track->rate <= 0) {
      continue;
    }
    int64_t position = 0;
    for (const TrackSegment& segment : track->segments) {
      position += segment.unit_count;
      boundaries.push_back(static_cast<double>(position) / track->rate);
    }
  }
  boundaries.push_back(LengthSec());
  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end(),
                               [](double a, double b) { return std::abs(a - b) < 1e-9; }),
                   boundaries.end());

  std::vector<SyncInterval> info;
  for (size_t i = 0; i + 1 < boundaries.size(); ++i) {
    const double begin = boundaries[i];
    const double end = boundaries[i + 1];
    if (end - begin < 1e-9) {
      continue;
    }
    const double midpoint = (begin + end) / 2.0;
    SyncInterval interval;
    interval.start_sec = begin;
    interval.length_sec = end - begin;
    if (video_.rate > 0 && midpoint < video_.DurationSec()) {
      const TrackPosition at_begin =
          Locate(video_, static_cast<int64_t>(midpoint * video_.rate));
      interval.video_strand = at_begin.strand;
      interval.video_rate = video_.rate;
      interval.video_granularity = video_.granularity;
      if (at_begin.strand != kNullStrand) {
        // Correspondence at the interval start, not the midpoint.
        const TrackPosition at_start = Locate(video_, video_.UnitsAt(begin));
        interval.video_block = at_start.strand_unit / video_.granularity;
      }
    }
    if (audio_.rate > 0 && midpoint < audio_.DurationSec()) {
      const TrackPosition at_begin =
          Locate(audio_, static_cast<int64_t>(midpoint * audio_.rate));
      interval.audio_strand = at_begin.strand;
      interval.audio_rate = audio_.rate;
      interval.audio_granularity = audio_.granularity;
      if (at_begin.strand != kNullStrand) {
        const TrackPosition at_start = Locate(audio_, audio_.UnitsAt(begin));
        interval.audio_block = at_start.strand_unit / audio_.granularity;
      }
    }
    info.push_back(interval);
  }
  return info;
}

}  // namespace vafs
