// Multimedia Rope Server (MRS): the device-independent layer of the file
// system (paper Section 5.2). Creates and maintains ropes, implements the
// editing operations of Section 4.1 as pure pointer manipulation over
// immutable strands, maintains Etherphone-style interests (reference
// counts) for garbage collection, and invokes the storage manager's
// scattering repair at edit seams so edited ropes stay playable.

#ifndef VAFS_SRC_ROPE_ROPE_SERVER_H_
#define VAFS_SRC_ROPE_ROPE_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/layout/strand_index.h"
#include "src/msm/reorganizer.h"
#include "src/msm/scattering_repair.h"
#include "src/msm/strand_store.h"
#include "src/rope/rope.h"
#include "src/util/result.h"

namespace vafs {

// Which media an editing operation applies to ("any subset of media
// constituting a rope", Section 4.1).
enum class MediaSelector {
  kVideo,
  kAudio,
  kAudioVisual,
};

// A time range within a rope or strand, in seconds.
struct TimeInterval {
  double start_sec = 0.0;
  double length_sec = 0.0;
};

class RopeServer {
 public:
  // The server does not own `store`; it must outlive the server.
  explicit RopeServer(StrandStore* store);

  // --- Creation -------------------------------------------------------------

  // Creates a rope over freshly recorded strands (either may be
  // kNullStrand, but not both). The strands' rates and granularities
  // become the rope's track parameters.
  Result<RopeId> CreateRope(const std::string& creator, StrandId video_strand,
                            StrandId audio_strand);

  Result<const Rope*> Find(RopeId id) const;

  Status SetAccess(const std::string& user, RopeId id, AccessControl access);

  Status AddTrigger(const std::string& user, RopeId id, Trigger trigger);

  // --- Editing (Section 4.1 interfaces) --------------------------------------

  // INSERT[baseRope, position, media, withRope, withInterval]
  Status Insert(const std::string& user, RopeId base, double position_sec, MediaSelector media,
                RopeId with, TimeInterval with_interval);

  // REPLACE[baseRope, media, baseInterval, withRope, withInterval]
  Status Replace(const std::string& user, RopeId base, MediaSelector media,
                 TimeInterval base_interval, RopeId with, TimeInterval with_interval);

  // SUBSTRING[baseRope, media, interval] -> new rope
  Result<RopeId> Substring(const std::string& user, RopeId base, MediaSelector media,
                           TimeInterval interval);

  // CONCATE[mmRopeID1, mmRopeID2] -> new rope
  Result<RopeId> Concat(const std::string& user, RopeId first, RopeId second);

  // DELETE[baseRope, media, interval]. Deleting all media closes the gap
  // (the rope shortens); deleting one medium blanks it, preserving the
  // other medium's timeline.
  Status Delete(const std::string& user, RopeId base, MediaSelector media,
                TimeInterval interval);

  // Deletes the rope itself; its strands become garbage once unreferenced.
  Status DeleteRope(const std::string& user, RopeId id);

  // --- Playback support -------------------------------------------------------

  // Flattens a rope's medium over a time interval into block locations in
  // playback order (gaps become silence entries). Enforces play access.
  Result<std::vector<PrimaryEntry>> ResolveBlocks(const std::string& user, RopeId id,
                                                  Medium medium, TimeInterval interval) const;

  // --- Scattering repair (Section 4.2) ----------------------------------------

  struct RopeRepairStats {
    int64_t seams_checked = 0;
    int64_t seams_repaired = 0;
    int64_t blocks_copied = 0;
    SimDuration copy_time = 0;
    // Seams whose copy chain a disk fault cut short. Partial progress is
    // spliced in and the unhealed remainder is re-checked on the next
    // RepairRope pass; `last_fault` carries the most recent device error.
    int64_t seams_interrupted = 0;
    Status last_fault = Status::Ok();
  };

  // Walks every edit seam in the rope's medium track and repairs those
  // whose gap exceeds the scattering bound, splicing the copies into the
  // rope.
  Result<RopeRepairStats> RepairRope(RopeId id, Medium medium);

  // --- Storage reorganization (Section 6.2) -----------------------------------

  struct StorageReorgStats {
    int64_t strands_audited = 0;
    int64_t strands_relocated = 0;
    int64_t blocks_moved = 0;
    SimDuration copy_time = 0;
    int64_t largest_free_extent_before = 0;
    int64_t largest_free_extent_after = 0;
  };

  // Smooths out scattering anomalies: audits every referenced strand and
  // relocates those whose realized gaps exceed their contract (or the
  // override bound, e.g. recomputed for new hardware), rebinding every
  // rope that references them and collecting the originals.
  Result<StorageReorgStats> ReorganizeStorage(double bound_override_sec = -1.0);

  // Defragmentation: relocates every referenced strand, packing them from
  // the start of the disk, so the free space consolidates into large runs
  // (the precondition for placing new strands within scattering bounds).
  Result<StorageReorgStats> CompactStorage();

  // --- Garbage collection (interests) -----------------------------------------

  // Number of rope segments referencing the strand across all ropes.
  int64_t InterestCount(StrandId id) const;

  // Protects a strand that is not yet referenced by any rope (e.g., just
  // recorded) from collection.
  void Pin(StrandId id) { pinned_.insert(id); }
  void Unpin(StrandId id) { pinned_.erase(id); }

  // Deletes every unreferenced, unpinned strand. Returns how many were
  // collected.
  int64_t CollectGarbage();

  int64_t rope_count() const { return static_cast<int64_t>(ropes_.size()); }

  // --- Persistence support -----------------------------------------------------

  // All ropes, for serialization into the on-disk image.
  std::vector<const Rope*> AllRopes() const;

  // Re-registers a recovered rope, keeping its id. With `replace_existing`
  // an already-present rope of the same id is overwritten — journal replay
  // upserts the full rope state per recorded edit.
  Status AdoptRope(std::unique_ptr<Rope> rope, bool replace_existing = false);

  // Removes a rope without the access-control check of DeleteRope. Journal
  // replay only: the recorded deletion already passed the check when it
  // happened.
  Status EraseRope(RopeId id);

  // Observes rope mutations (creation, edit, deletion), so the
  // crash-consistency layer can journal intents between checkpoints.
  // Adoption and erasure during recovery do not notify.
  class MutationListener {
   public:
    virtual ~MutationListener() = default;
    virtual void OnRopeChanged(const Rope& rope) = 0;
    virtual void OnRopeDeleted(RopeId id) = 0;
  };
  void set_mutation_listener(MutationListener* listener) { listener_ = listener; }

 private:
  Result<Rope*> FindMutable(const std::string& user, RopeId id);
  // Reports a rope's (possibly new) full state to the mutation listener.
  void NotifyChanged(RopeId id);
  // Tracks selected by a MediaSelector.
  static std::vector<Medium> SelectedMedia(MediaSelector media);
  // Ensures the rope's track for `medium` has rate/granularity compatible
  // with `reference`; adopts them (padding with a gap to `pad_to_sec`) when
  // the track is still untyped.
  Status EnsureTrackCompatible(Rope* rope, Medium medium, const Track& reference,
                               double pad_to_sec);
  // Points every rope segment referencing `from` at `to` instead (unit
  // offsets are preserved by relocation).
  void RebindStrand(StrandId from, StrandId to);
  // Strands referenced by at least one rope, in id order.
  std::vector<StrandId> ReferencedStrands() const;

  StrandStore* store_;
  MutationListener* listener_ = nullptr;
  RopeId next_id_ = 1;
  std::map<RopeId, std::unique_ptr<Rope>> ropes_;
  std::set<StrandId> pinned_;
};

}  // namespace vafs

#endif  // VAFS_SRC_ROPE_ROPE_SERVER_H_
