// Multimedia rope: strands tied together by synchronization information
// (paper Section 4, Figures 7-8).
//
// A rope carries its creator, access rights, and for each component
// medium the sequence of strand intervals that make up its timeline.
// Internally each medium is a *track*: an ordered list of segments, where
// a segment references a half-open unit range of an immutable strand, or
// is a gap (no media for that duration — e.g., a rope whose video was
// deleted while its audio remains, or the non-existent video component of
// the paper's Rope4). Editing manipulates these segment lists only;
// strand payloads are never touched (Section 4's pointer-manipulation
// requirement). The paper's Fig. 8 interval view — per-interval strand
// IDs, rates, granularities and block-level correspondence — is derived
// from the two tracks on demand.

#ifndef VAFS_SRC_ROPE_ROPE_H_
#define VAFS_SRC_ROPE_ROPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/media/media.h"
#include "src/msm/strand.h"
#include "src/util/result.h"

namespace vafs {

using RopeId = uint64_t;
inline constexpr RopeId kNullRope = 0;

// One run of a track: `unit_count` units of `strand` starting at
// `start_unit`, or a gap of `unit_count` units when strand == kNullStrand.
struct TrackSegment {
  StrandId strand = kNullStrand;
  int64_t start_unit = 0;
  int64_t unit_count = 0;

  bool IsGap() const { return strand == kNullStrand; }
  friend bool operator==(const TrackSegment& a, const TrackSegment& b) = default;
};

// A single-medium timeline.
struct Track {
  Medium medium = Medium::kVideo;
  double rate = 0.0;        // units/sec; 0 while the track is empty
  int64_t granularity = 1;  // units/block of the referenced strands

  std::vector<TrackSegment> segments;

  bool empty() const { return segments.empty(); }
  int64_t TotalUnits() const;
  double DurationSec() const {
    return rate > 0 ? static_cast<double>(TotalUnits()) / rate : 0.0;
  }

  // Converts a time offset to a unit offset (round to nearest unit).
  int64_t UnitsAt(double seconds) const;
};

// Access-control lists (Fig. 8: PlayAccess / EditAccess). An empty list
// grants access to everyone; otherwise the creator and listed users only.
struct AccessControl {
  std::vector<std::string> play_users;
  std::vector<std::string> edit_users;

  bool AllowsPlay(const std::string& user, const std::string& creator) const;
  bool AllowsEdit(const std::string& user, const std::string& creator) const;
};

// Text synchronized with the audio/video timeline (Fig. 8 trigger info).
struct Trigger {
  double at_sec = 0.0;
  std::string text;
};

// The Fig. 8 interval view: one entry per maximal run over which both
// tracks reference an unchanging (strand, offset) pair.
struct SyncInterval {
  StrandId video_strand = kNullStrand;
  StrandId audio_strand = kNullStrand;
  double start_sec = 0.0;
  double length_sec = 0.0;
  double video_rate = 0.0;
  double audio_rate = 0.0;
  int64_t video_granularity = 0;
  int64_t audio_granularity = 0;
  // Block-level correspondence: blocks of each strand at which this
  // interval's playback starts simultaneously.
  int64_t video_block = -1;
  int64_t audio_block = -1;
};

class Rope {
 public:
  Rope(RopeId id, std::string creator) : id_(id), creator_(std::move(creator)) {}

  RopeId id() const { return id_; }
  const std::string& creator() const { return creator_; }
  AccessControl& access() { return access_; }
  const AccessControl& access() const { return access_; }

  Track& video() { return video_; }
  const Track& video() const { return video_; }
  Track& audio() { return audio_; }
  const Track& audio() const { return audio_; }

  Track& TrackFor(Medium medium) { return medium == Medium::kVideo ? video_ : audio_; }
  const Track& TrackFor(Medium medium) const {
    return medium == Medium::kVideo ? video_ : audio_;
  }

  std::vector<Trigger>& triggers() { return triggers_; }
  const std::vector<Trigger>& triggers() const { return triggers_; }

  // Rope length: the longer of the two component timelines.
  double LengthSec() const;

  // Derives the Fig. 8 synchronization-information view.
  std::vector<SyncInterval> SynchronizationInfo() const;

 private:
  RopeId id_;
  std::string creator_;
  AccessControl access_;
  Track video_{Medium::kVideo, 0.0, 1, {}};
  Track audio_{Medium::kAudio, 0.0, 1, {}};
  std::vector<Trigger> triggers_;
};

// --- Track surgery (shared by the rope server's editing operations) --------

// Appends a segment, merging with the tail when contiguous in the same
// strand (or both gaps).
void AppendSegment(Track* track, TrackSegment segment);

// Copies the sub-track covering units [start_unit, start_unit + count).
std::vector<TrackSegment> SliceTrack(const Track& track, int64_t start_unit, int64_t count);

// Removes units [start_unit, start_unit + count), closing the gap (the
// track shortens).
void EraseRange(Track* track, int64_t start_unit, int64_t count);

// Replaces units [start_unit, start_unit + count) with a gap of equal
// length (duration preserved; used when deleting one medium of a rope).
void BlankRange(Track* track, int64_t start_unit, int64_t count);

// Inserts the given segments at `start_unit`, shifting the remainder.
void InsertSegments(Track* track, int64_t start_unit, const std::vector<TrackSegment>& segments);

}  // namespace vafs

#endif  // VAFS_SRC_ROPE_ROPE_H_
