#include "src/rope/rope_server.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "src/util/units.h"

namespace vafs {

RopeServer::RopeServer(StrandStore* store) : store_(store) {}

void RopeServer::NotifyChanged(RopeId id) {
  if (listener_ == nullptr) {
    return;
  }
  auto it = ropes_.find(id);
  if (it != ropes_.end()) {
    listener_->OnRopeChanged(*it->second);
  }
}

std::vector<Medium> RopeServer::SelectedMedia(MediaSelector media) {
  switch (media) {
    case MediaSelector::kVideo:
      return {Medium::kVideo};
    case MediaSelector::kAudio:
      return {Medium::kAudio};
    case MediaSelector::kAudioVisual:
      return {Medium::kVideo, Medium::kAudio};
  }
  return {};
}

Result<RopeId> RopeServer::CreateRope(const std::string& creator, StrandId video_strand,
                                      StrandId audio_strand) {
  if (video_strand == kNullStrand && audio_strand == kNullStrand) {
    return Status(ErrorCode::kInvalidArgument, "rope needs at least one strand");
  }
  auto rope = std::make_unique<Rope>(next_id_, creator);
  for (auto [medium, strand_id] :
       {std::pair{Medium::kVideo, video_strand}, std::pair{Medium::kAudio, audio_strand}}) {
    if (strand_id == kNullStrand) {
      continue;
    }
    Result<const Strand*> strand = store_->Get(strand_id);
    if (!strand.ok()) {
      return strand.status();
    }
    const StrandInfo& info = (*strand)->info();
    if (info.medium != medium) {
      return Status(ErrorCode::kInvalidArgument,
                    "strand " + std::to_string(strand_id) + " is not " + MediumName(medium));
    }
    Track& track = rope->TrackFor(medium);
    track.rate = info.recording_rate;
    track.granularity = info.granularity;
    track.segments.push_back(TrackSegment{strand_id, 0, info.unit_count});
  }
  const RopeId id = next_id_++;
  ropes_[id] = std::move(rope);
  NotifyChanged(id);
  return id;
}

Result<const Rope*> RopeServer::Find(RopeId id) const {
  auto it = ropes_.find(id);
  if (it == ropes_.end()) {
    return Status(ErrorCode::kNotFound, "rope " + std::to_string(id));
  }
  return const_cast<const Rope*>(it->second.get());
}

Result<Rope*> RopeServer::FindMutable(const std::string& user, RopeId id) {
  auto it = ropes_.find(id);
  if (it == ropes_.end()) {
    return Status(ErrorCode::kNotFound, "rope " + std::to_string(id));
  }
  if (!it->second->access().AllowsEdit(user, it->second->creator())) {
    return Status(ErrorCode::kPermissionDenied,
                  user + " may not edit rope " + std::to_string(id));
  }
  return it->second.get();
}

Status RopeServer::SetAccess(const std::string& user, RopeId id, AccessControl access) {
  Result<Rope*> rope = FindMutable(user, id);
  if (!rope.ok()) {
    return rope.status();
  }
  (*rope)->access() = std::move(access);
  NotifyChanged(id);
  return Status::Ok();
}

Status RopeServer::AddTrigger(const std::string& user, RopeId id, Trigger trigger) {
  Result<Rope*> rope = FindMutable(user, id);
  if (!rope.ok()) {
    return rope.status();
  }
  if (trigger.at_sec < 0 || trigger.at_sec > (*rope)->LengthSec()) {
    return Status(ErrorCode::kOutOfRange, "trigger outside rope");
  }
  (*rope)->triggers().push_back(std::move(trigger));
  std::sort((*rope)->triggers().begin(), (*rope)->triggers().end(),
            [](const Trigger& a, const Trigger& b) { return a.at_sec < b.at_sec; });
  NotifyChanged(id);
  return Status::Ok();
}

Status RopeServer::EnsureTrackCompatible(Rope* rope, Medium medium, const Track& reference,
                                         double pad_to_sec) {
  Track& track = rope->TrackFor(medium);
  if (track.rate <= 0) {
    track.rate = reference.rate;
    track.granularity = reference.granularity;
    const int64_t pad_units = pad_to_sec > 0 ? track.UnitsAt(pad_to_sec) : 0;
    if (pad_units > 0) {
      track.segments.push_back(TrackSegment{kNullStrand, 0, pad_units});
    }
    return Status::Ok();
  }
  if (std::abs(track.rate - reference.rate) > 1e-9 ||
      track.granularity != reference.granularity) {
    // Mixed-rate tracks would break the unit arithmetic of block-level
    // correspondence; vaFS requires re-encoding to combine them.
    return Status(ErrorCode::kInvalidArgument,
                  std::string("incompatible ") + MediumName(medium) + " recording parameters");
  }
  return Status::Ok();
}

Status RopeServer::Insert(const std::string& user, RopeId base, double position_sec,
                          MediaSelector media, RopeId with, TimeInterval with_interval) {
  Result<Rope*> base_rope = FindMutable(user, base);
  if (!base_rope.ok()) {
    return base_rope.status();
  }
  Result<const Rope*> with_rope = Find(with);
  if (!with_rope.ok()) {
    return with_rope.status();
  }
  if (!(*with_rope)->access().AllowsPlay(user, (*with_rope)->creator())) {
    return Status(ErrorCode::kPermissionDenied, "no play access to source rope");
  }
  if (position_sec < 0 || position_sec > (*base_rope)->LengthSec() + 1e-9) {
    return Status(ErrorCode::kOutOfRange, "insert position outside rope");
  }

  for (Medium medium : SelectedMedia(media)) {
    const Track& source = (*with_rope)->TrackFor(medium);
    Track& target = (*base_rope)->TrackFor(medium);
    if (source.rate <= 0 && target.rate <= 0) {
      continue;  // neither rope carries this medium
    }
    if (source.rate > 0) {
      if (Status status = EnsureTrackCompatible(*base_rope, medium, source, position_sec);
          !status.ok()) {
        return status;
      }
      const int64_t start = source.UnitsAt(with_interval.start_sec);
      const int64_t count = source.UnitsAt(with_interval.length_sec);
      if (start < 0 || start + count > source.TotalUnits()) {
        return Status(ErrorCode::kOutOfRange, "withInterval outside source rope");
      }
      InsertSegments(&target, target.UnitsAt(position_sec), SliceTrack(source, start, count));
    } else {
      // The source rope lacks this medium: keep the base's media aligned
      // by inserting an equal-duration gap.
      const int64_t position = target.UnitsAt(position_sec);
      const int64_t count = target.UnitsAt(with_interval.length_sec);
      InsertSegments(&target, position, {TrackSegment{kNullStrand, 0, count}});
    }
  }
  if (media == MediaSelector::kAudioVisual) {
    for (Trigger& trigger : (*base_rope)->triggers()) {
      if (trigger.at_sec >= position_sec) {
        trigger.at_sec += with_interval.length_sec;
      }
    }
  }
  NotifyChanged(base);
  return Status::Ok();
}

Status RopeServer::Replace(const std::string& user, RopeId base, MediaSelector media,
                           TimeInterval base_interval, RopeId with, TimeInterval with_interval) {
  Result<Rope*> base_rope = FindMutable(user, base);
  if (!base_rope.ok()) {
    return base_rope.status();
  }
  Result<const Rope*> with_rope = Find(with);
  if (!with_rope.ok()) {
    return with_rope.status();
  }
  if (!(*with_rope)->access().AllowsPlay(user, (*with_rope)->creator())) {
    return Status(ErrorCode::kPermissionDenied, "no play access to source rope");
  }

  for (Medium medium : SelectedMedia(media)) {
    const Track& source = (*with_rope)->TrackFor(medium);
    Track& target = (*base_rope)->TrackFor(medium);
    if (source.rate <= 0 && target.rate <= 0) {
      continue;
    }
    const Track& reference = source.rate > 0 ? source : target;
    if (Status status = EnsureTrackCompatible(
            *base_rope, medium, reference, base_interval.start_sec + base_interval.length_sec);
        !status.ok()) {
      return status;
    }
    const int64_t erase_start = target.UnitsAt(base_interval.start_sec);
    const int64_t erase_count =
        std::min(target.UnitsAt(base_interval.length_sec), target.TotalUnits() - erase_start);
    if (erase_start < 0 || erase_start > target.TotalUnits()) {
      return Status(ErrorCode::kOutOfRange, "baseInterval outside rope");
    }
    std::vector<TrackSegment> replacement;
    if (source.rate > 0) {
      const int64_t start = source.UnitsAt(with_interval.start_sec);
      const int64_t count = source.UnitsAt(with_interval.length_sec);
      if (start < 0 || start + count > source.TotalUnits()) {
        return Status(ErrorCode::kOutOfRange, "withInterval outside source rope");
      }
      replacement = SliceTrack(source, start, count);
    } else {
      replacement.push_back(TrackSegment{kNullStrand, 0, target.UnitsAt(with_interval.length_sec)});
    }
    EraseRange(&target, erase_start, erase_count);
    InsertSegments(&target, erase_start, replacement);
  }
  NotifyChanged(base);
  return Status::Ok();
}

Result<RopeId> RopeServer::Substring(const std::string& user, RopeId base, MediaSelector media,
                                     TimeInterval interval) {
  Result<const Rope*> base_rope = Find(base);
  if (!base_rope.ok()) {
    return base_rope.status();
  }
  if (!(*base_rope)->access().AllowsPlay(user, (*base_rope)->creator())) {
    return Status(ErrorCode::kPermissionDenied, "no play access");
  }
  auto result = std::make_unique<Rope>(next_id_, user);
  for (Medium medium : SelectedMedia(media)) {
    const Track& source = (*base_rope)->TrackFor(medium);
    if (source.rate <= 0) {
      continue;
    }
    Track& target = result->TrackFor(medium);
    target.rate = source.rate;
    target.granularity = source.granularity;
    const int64_t start = source.UnitsAt(interval.start_sec);
    const int64_t count =
        std::min(source.UnitsAt(interval.length_sec), source.TotalUnits() - start);
    if (start < 0 || start > source.TotalUnits()) {
      return Status(ErrorCode::kOutOfRange, "interval outside rope");
    }
    target.segments = SliceTrack(source, start, count);
  }
  // Synchronization info (triggers) in range is copied, re-based to the
  // substring's origin (Section 4: sync info is copied when strands are
  // shared between ropes).
  for (const Trigger& trigger : (*base_rope)->triggers()) {
    if (trigger.at_sec >= interval.start_sec &&
        trigger.at_sec < interval.start_sec + interval.length_sec) {
      result->triggers().push_back(Trigger{trigger.at_sec - interval.start_sec, trigger.text});
    }
  }
  const RopeId id = next_id_++;
  ropes_[id] = std::move(result);
  NotifyChanged(id);
  return id;
}

Result<RopeId> RopeServer::Concat(const std::string& user, RopeId first, RopeId second) {
  Result<const Rope*> first_rope = Find(first);
  if (!first_rope.ok()) {
    return first_rope.status();
  }
  Result<const Rope*> second_rope = Find(second);
  if (!second_rope.ok()) {
    return second_rope.status();
  }
  for (const Rope* rope : {*first_rope, *second_rope}) {
    if (!rope->access().AllowsPlay(user, rope->creator())) {
      return Status(ErrorCode::kPermissionDenied, "no play access");
    }
  }

  auto result = std::make_unique<Rope>(next_id_, user);
  const double first_length = (*first_rope)->LengthSec();
  for (Medium medium : {Medium::kVideo, Medium::kAudio}) {
    const Track& track_a = (*first_rope)->TrackFor(medium);
    const Track& track_b = (*second_rope)->TrackFor(medium);
    if (track_a.rate <= 0 && track_b.rate <= 0) {
      continue;
    }
    const Track& reference = track_a.rate > 0 ? track_a : track_b;
    if (track_a.rate > 0 && track_b.rate > 0 &&
        (std::abs(track_a.rate - track_b.rate) > 1e-9 ||
         track_a.granularity != track_b.granularity)) {
      return Status(ErrorCode::kInvalidArgument,
                    std::string("incompatible ") + MediumName(medium) + " tracks");
    }
    Track& target = result->TrackFor(medium);
    target.rate = reference.rate;
    target.granularity = reference.granularity;
    for (const TrackSegment& segment : track_a.segments) {
      AppendSegment(&target, segment);
    }
    // Align the seam to the end of the *rope* (both media start together
    // in the second part): pad the shorter track with a gap.
    const int64_t pad = target.UnitsAt(first_length) - target.TotalUnits();
    if (pad > 0) {
      AppendSegment(&target, TrackSegment{kNullStrand, 0, pad});
    }
    for (const TrackSegment& segment : track_b.segments) {
      AppendSegment(&target, segment);
    }
  }
  for (const Trigger& trigger : (*first_rope)->triggers()) {
    result->triggers().push_back(trigger);
  }
  for (const Trigger& trigger : (*second_rope)->triggers()) {
    result->triggers().push_back(Trigger{trigger.at_sec + first_length, trigger.text});
  }
  const RopeId id = next_id_++;
  ropes_[id] = std::move(result);
  NotifyChanged(id);
  return id;
}

Status RopeServer::Delete(const std::string& user, RopeId base, MediaSelector media,
                          TimeInterval interval) {
  Result<Rope*> rope = FindMutable(user, base);
  if (!rope.ok()) {
    return rope.status();
  }
  const bool all_media = media == MediaSelector::kAudioVisual;
  for (Medium medium : SelectedMedia(media)) {
    Track& track = (*rope)->TrackFor(medium);
    if (track.rate <= 0) {
      continue;
    }
    const int64_t start = track.UnitsAt(interval.start_sec);
    const int64_t count = std::min(track.UnitsAt(interval.length_sec),
                                   track.TotalUnits() - start);
    if (start < 0 || start > track.TotalUnits() || count < 0) {
      return Status(ErrorCode::kOutOfRange, "interval outside rope");
    }
    if (all_media) {
      EraseRange(&track, start, count);  // the rope shortens
    } else {
      BlankRange(&track, start, count);  // the other medium keeps its timeline
    }
  }
  if (all_media) {
    auto& triggers = (*rope)->triggers();
    std::erase_if(triggers, [&](const Trigger& trigger) {
      return trigger.at_sec >= interval.start_sec &&
             trigger.at_sec < interval.start_sec + interval.length_sec;
    });
    for (Trigger& trigger : triggers) {
      if (trigger.at_sec >= interval.start_sec + interval.length_sec) {
        trigger.at_sec -= interval.length_sec;
      }
    }
  }
  NotifyChanged(base);
  return Status::Ok();
}

Status RopeServer::DeleteRope(const std::string& user, RopeId id) {
  Result<Rope*> rope = FindMutable(user, id);
  if (!rope.ok()) {
    return rope.status();
  }
  ropes_.erase(id);
  if (listener_ != nullptr) {
    listener_->OnRopeDeleted(id);
  }
  return Status::Ok();
}

Result<std::vector<PrimaryEntry>> RopeServer::ResolveBlocks(const std::string& user, RopeId id,
                                                            Medium medium,
                                                            TimeInterval interval) const {
  Result<const Rope*> rope = Find(id);
  if (!rope.ok()) {
    return rope.status();
  }
  if (!(*rope)->access().AllowsPlay(user, (*rope)->creator())) {
    return Status(ErrorCode::kPermissionDenied,
                  user + " may not play rope " + std::to_string(id));
  }
  const Track& track = (*rope)->TrackFor(medium);
  if (track.rate <= 0) {
    return Status(ErrorCode::kNotFound,
                  std::string("rope has no ") + MediumName(medium) + " component");
  }
  const int64_t start = track.UnitsAt(interval.start_sec);
  const int64_t count = std::min(track.UnitsAt(interval.length_sec),
                                 track.TotalUnits() - start);
  if (start < 0 || start > track.TotalUnits()) {
    return Status(ErrorCode::kOutOfRange, "interval outside rope");
  }

  std::vector<PrimaryEntry> blocks;
  for (const TrackSegment& piece : SliceTrack(track, start, count)) {
    if (piece.IsGap()) {
      const int64_t gap_blocks = CeilDiv(piece.unit_count, track.granularity);
      blocks.insert(blocks.end(), static_cast<size_t>(gap_blocks),
                    PrimaryEntry{kSilenceSector, 0});
      continue;
    }
    Result<const Strand*> strand = store_->Get(piece.strand);
    if (!strand.ok()) {
      return strand.status();
    }
    const int64_t first_block = piece.start_unit / track.granularity;
    const int64_t last_block = (piece.start_unit + piece.unit_count - 1) / track.granularity;
    for (int64_t block = first_block; block <= last_block; ++block) {
      Result<PrimaryEntry> entry = (*strand)->index().Lookup(block);
      if (!entry.ok()) {
        return entry.status();
      }
      blocks.push_back(*entry);
    }
  }
  return blocks;
}

Result<RopeServer::RopeRepairStats> RopeServer::RepairRope(RopeId id, Medium medium) {
  auto it = ropes_.find(id);
  if (it == ropes_.end()) {
    return Status(ErrorCode::kNotFound, "rope " + std::to_string(id));
  }
  Track& track = it->second->TrackFor(medium);
  RopeRepairStats stats;
  if (track.rate <= 0) {
    return stats;
  }
  const int64_t q = track.granularity;

  for (size_t i = 1; i < track.segments.size(); ++i) {
    const TrackSegment& previous = track.segments[i - 1];
    TrackSegment current = track.segments[i];
    if (previous.IsGap() || current.IsGap()) {
      continue;  // a gap's playback duration absorbs any reposition
    }
    const int64_t previous_last_block =
        (previous.start_unit + previous.unit_count - 1) / q;
    const int64_t current_first_block = current.start_unit / q;
    const int64_t current_last_block = (current.start_unit + current.unit_count - 1) / q;
    ++stats.seams_checked;

    Result<RepairOutcome> outcome =
        RepairSeam(store_, previous.strand, previous_last_block, current.strand,
                   current_first_block, current_last_block - current_first_block + 1);
    if (!outcome.ok()) {
      return outcome.status();
    }
    if (outcome->already_continuous) {
      continue;
    }
    stats.blocks_copied += outcome->blocks_copied;
    stats.copy_time += outcome->copy_time;
    if (outcome->interrupted) {
      ++stats.seams_interrupted;
      stats.last_fault = outcome->fault;
      if (outcome->blocks_copied == 0) {
        continue;  // no progress; the seam stays for a later pass
      }
    } else {
      ++stats.seams_repaired;
    }

    // Splice: the first `blocks_copied` blocks of the current segment now
    // live (verbatim) in the copy strand.
    const int64_t copied_units_end = (current_first_block + outcome->blocks_copied) * q;
    const int64_t part_a_count =
        std::min(current.unit_count, copied_units_end - current.start_unit);
    TrackSegment part_a{outcome->copy_strand, current.start_unit - current_first_block * q,
                        part_a_count};
    TrackSegment part_b{current.strand, current.start_unit + part_a_count,
                        current.unit_count - part_a_count};
    track.segments[i] = part_a;
    if (part_b.unit_count > 0) {
      track.segments.insert(track.segments.begin() + static_cast<ptrdiff_t>(i) + 1, part_b);
      if (!outcome->interrupted) {
        // The copy chain ends exactly when part_b's first original block is
        // within the bound of the last copied block, so the part_a/part_b
        // seam needs no check; resume after part_b.
        ++i;
      }
      // An interrupted chain stopped short of reachability: leave `i` so
      // the next iteration re-checks the part_a/part_b seam. Every pass
      // splices at least one block, so the walk still terminates.
    }
  }
  if (stats.blocks_copied > 0) {
    NotifyChanged(id);
  }
  return stats;
}

void RopeServer::RebindStrand(StrandId from, StrandId to) {
  for (auto& [rope_id, rope] : ropes_) {
    for (Track* track : {&rope->video(), &rope->audio()}) {
      for (TrackSegment& segment : track->segments) {
        if (segment.strand == from) {
          segment.strand = to;
        }
      }
    }
  }
  if (pinned_.erase(from) > 0) {
    pinned_.insert(to);
  }
}

std::vector<StrandId> RopeServer::ReferencedStrands() const {
  std::set<StrandId> referenced = pinned_;
  for (const auto& [rope_id, rope] : ropes_) {
    for (const Track* track : {&rope->video(), &rope->audio()}) {
      for (const TrackSegment& segment : track->segments) {
        if (!segment.IsGap()) {
          referenced.insert(segment.strand);
        }
      }
    }
  }
  return std::vector<StrandId>(referenced.begin(), referenced.end());
}

Result<RopeServer::StorageReorgStats> RopeServer::ReorganizeStorage(double bound_override_sec) {
  StorageReorgStats stats;
  stats.largest_free_extent_before = store_->allocator().LargestFreeExtent();
  for (StrandId id : ReferencedStrands()) {
    Result<StrandHealth> health = AuditStrand(store_, id, bound_override_sec);
    if (!health.ok()) {
      return health.status();
    }
    ++stats.strands_audited;
    if (!health->NeedsRepair()) {
      continue;
    }
    Result<RelocationOutcome> outcome =
        RelocateStrand(store_, id, /*pack_hint_sector=*/-1, bound_override_sec);
    if (!outcome.ok()) {
      return outcome.status();
    }
    RebindStrand(id, outcome->new_strand);
    if (Status status = store_->Delete(id); !status.ok()) {
      return status;
    }
    ++stats.strands_relocated;
    stats.blocks_moved += outcome->blocks_moved;
    stats.copy_time += outcome->copy_time;
  }
  stats.largest_free_extent_after = store_->allocator().LargestFreeExtent();
  if (stats.strands_relocated > 0) {
    // Relocation rebinds strand ids inside rope tracks; report every rope's
    // post-rebind state so the journal reflects the new bindings.
    for (const auto& [rope_id, rope] : ropes_) {
      NotifyChanged(rope_id);
    }
  }
  return stats;
}

Result<RopeServer::StorageReorgStats> RopeServer::CompactStorage() {
  StorageReorgStats stats;
  stats.largest_free_extent_before = store_->allocator().LargestFreeExtent();
  int64_t pack_cursor = 0;
  for (StrandId id : ReferencedStrands()) {
    Result<RelocationOutcome> outcome = RelocateStrand(store_, id, pack_cursor);
    if (!outcome.ok()) {
      return outcome.status();
    }
    RebindStrand(id, outcome->new_strand);
    if (Status status = store_->Delete(id); !status.ok()) {
      return status;
    }
    ++stats.strands_audited;
    ++stats.strands_relocated;
    stats.blocks_moved += outcome->blocks_moved;
    stats.copy_time += outcome->copy_time;
    // Pack the next strand right behind this one.
    Result<const Strand*> relocated = store_->Get(outcome->new_strand);
    if (relocated.ok() && (*relocated)->block_count() > 0) {
      Result<PrimaryEntry> last =
          (*relocated)->index().Lookup((*relocated)->block_count() - 1);
      if (last.ok() && !last->IsSilence()) {
        pack_cursor = std::max(pack_cursor, last->sector + last->sector_count);
      }
    }
  }
  stats.largest_free_extent_after = store_->allocator().LargestFreeExtent();
  if (stats.strands_relocated > 0) {
    for (const auto& [rope_id, rope] : ropes_) {
      NotifyChanged(rope_id);
    }
  }
  return stats;
}

int64_t RopeServer::InterestCount(StrandId id) const {
  int64_t count = 0;
  for (const auto& [rope_id, rope] : ropes_) {
    for (const Track* track : {&rope->video(), &rope->audio()}) {
      for (const TrackSegment& segment : track->segments) {
        if (segment.strand == id) {
          ++count;
        }
      }
    }
  }
  return count;
}

std::vector<const Rope*> RopeServer::AllRopes() const {
  std::vector<const Rope*> ropes;
  for (const auto& [id, rope] : ropes_) {
    ropes.push_back(rope.get());
  }
  return ropes;
}

Status RopeServer::AdoptRope(std::unique_ptr<Rope> rope, bool replace_existing) {
  const RopeId id = rope->id();
  if (!replace_existing && ropes_.count(id) != 0) {
    return Status(ErrorCode::kAlreadyExists, "rope " + std::to_string(id));
  }
  ropes_[id] = std::move(rope);
  if (id >= next_id_) {
    next_id_ = id + 1;
  }
  return Status::Ok();
}

Status RopeServer::EraseRope(RopeId id) {
  if (ropes_.erase(id) == 0) {
    return Status(ErrorCode::kNotFound, "rope " + std::to_string(id));
  }
  return Status::Ok();
}

int64_t RopeServer::CollectGarbage() {
  std::set<StrandId> referenced = pinned_;
  for (const auto& [rope_id, rope] : ropes_) {
    for (const Track* track : {&rope->video(), &rope->audio()}) {
      for (const TrackSegment& segment : track->segments) {
        if (!segment.IsGap()) {
          referenced.insert(segment.strand);
        }
      }
    }
  }
  int64_t collected = 0;
  for (StrandId id : store_->AllIds()) {
    if (referenced.count(id) == 0) {
      if (store_->Delete(id).ok()) {
        ++collected;
      }
    }
  }
  return collected;
}

}  // namespace vafs
