// Fault-tolerant scale-out: vaFS sharded across storage nodes.
//
// One MultimediaFileSystem is one spindle's worth of service: its Eq. 17
// ceiling caps admitted streams no matter how popular the library gets.
// This module scales that out the way a video server farm would: every
// StorageNode owns a full vaFS stack (disk, admission, scheduler, session
// layer, journal, telemetry), and a ClusterCoordinator places titles
// across nodes, routes viewers to replica holders, and — the robustness
// headline — keeps viewers alive through node loss:
//
//  - PLACEMENT: hot titles (the Zipf head a flash crowd will point at)
//    are recorded on `hot_replicas` nodes, cold titles on `cold_replicas`,
//    spread to the least-loaded nodes. Replication is by deterministic
//    re-record: every title is a seeded synthetic source, so each replica
//    is regenerated bit-identically rather than copied over a network we
//    do not model.
//  - ROUTING: a viewer goes to the up replica holder with the fewest
//    routed viewers (ties to the lowest node id), and is admitted there
//    through the node's own session layer — batching and patching against
//    that node's other viewers, under that node's Eq. 17 budget.
//  - FAILOVER: the coordinator advances all nodes in lockstep epochs.
//    A node killed mid-epoch keeps "serving" until the next epoch
//    boundary — its streams degrade to skip-on-time against the failed
//    disk (PR 2 fault semantics) — where the coordinator declares it dead
//    (kNodeDown), fences its requests, and re-admits its viewers on
//    surviving replicas at their playback position (the session layer's
//    mid-title start_block path). Re-admission is attempted highest
//    priority first at each boundary while the interruption still fits
//    the stamped bound of `failover_bound_epochs` epochs; a viewer no
//    surviving node can absorb inside the bound is explicitly shed
//    (kShedLoad) — never silently dropped. Every kFailover event stamps
//    its realized interruption and the bound, and the cluster's
//    ContinuityAuditor flags any failover that exceeded it.
//  - REPAIR: titles that lost a replica queue for background
//    re-replication, paid for from a token bucket refilled with
//    `repair_tokens_per_epoch` blocks each epoch — repair traffic is
//    bounded per epoch and runs off the round path, so it never eats a
//    live stream's Eq. 11 budget.
//  - RESTART: a killed node with a scheduled restart powers back up,
//    replays its own intent journal through MultimediaFileSystem::
//    Recover() (PR 3 machinery, per node), and the coordinator walks its
//    catalog title-by-title in recording order, dropping replicas the
//    recovered image cannot substantiate, before readmitting the node
//    (kNodeUp) to the routing tables.
//
// Determinism: all cross-node decisions happen at epoch boundaries in
// fixed node order, each node's simulator advances in lockstep, and the
// per-node wall-clock engine is byte-identical for any VAFS_WORKERS —
// so a seeded cluster run (arrivals + failure schedule) replays
// identically for any worker count.

#ifndef VAFS_SRC_CLUSTER_CLUSTER_H_
#define VAFS_SRC_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/media/media.h"
#include "src/obs/auditor.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/workload.h"
#include "src/vafs/file_system.h"

namespace vafs {
namespace cluster {

struct ClusterOptions {
  int nodes = 1;
  // Per-node stack template; each node gets its own copy (telemetry and
  // the session layer are forced on — routing admits through OpenSession).
  FileSystemConfig node_config;
  // Profile of every clustered title (titles are seeded synthetic video).
  MediaProfile media;
  // Coordinator control-loop period. Failure detection, failover,
  // restart reconciliation and repair all happen at epoch boundaries.
  double epoch_sec = 0.25;
  int64_t hot_replicas = 2;
  int64_t cold_replicas = 1;
  // A failed-over viewer must resume within this many epochs of its
  // node's death; the bound is stamped on every kFailover event and
  // checked by the cluster auditor.
  int64_t failover_bound_epochs = 2;
  // Repair token bucket: blocks of re-replication bandwidth granted per
  // epoch, and the bucket's burst capacity.
  int64_t repair_tokens_per_epoch = 64;
  int64_t repair_token_burst = 512;
  // A restarted node reconciles its recovered catalog against the
  // coordinator's this many titles per epoch (kRecovering); it rejoins
  // the routing tables only once the walk completes.
  int64_t reconcile_titles_per_epoch = 8;
  // Optional extra sink on the cluster event tee (alongside the owned
  // log, auditor and metrics fold). Must outlive the coordinator.
  obs::TraceSink* trace = nullptr;
};

// Node lifecycle: kUp --kill--> kDead --journal replay--> kRecovering
// --catalog reconciled--> kUp. (A network partition is modeled the same
// as a kill: the node is fenced and its viewers failed over; on heal its
// intact catalog reconciles clean and it rejoins. The disk keeps its
// platters either way.)
enum class NodeState { kUp, kDead, kRecovering };

const char* NodeStateName(NodeState state);

// One vaFS stack plus its cluster-side lifecycle state. The node owns a
// strict ContinuityAuditor riding its telemetry tee, so every node's
// round trace is checked independently.
class StorageNode {
 public:
  StorageNode(int id, const FileSystemConfig& config, obs::TraceSink* extra_sink);

  int id() const { return id_; }
  NodeState state() const { return state_; }
  void set_state(NodeState state) { state_ = state; }
  MultimediaFileSystem& fs() { return *fs_; }
  const MultimediaFileSystem& fs() const { return *fs_; }
  obs::ContinuityAuditor& auditor() { return auditor_; }
  const obs::ContinuityAuditor& auditor() const { return auditor_; }

 private:
  int id_;
  NodeState state_ = NodeState::kUp;
  obs::ContinuityAuditor auditor_;
  obs::TeeSink user_tee_;  // auditor + any template-supplied sink
  std::unique_ptr<MultimediaFileSystem> fs_;
};

// One admitted viewer's life across the cluster.
struct ViewerRecord {
  enum class State {
    kViewing,   // admitted, stream live on `node`
    kFinished,  // playback window ran out (possibly with a degraded tail)
    kPending,   // node died; awaiting a failover slot within the bound
    kShed,      // no survivor could absorb it inside the bound
    kRejected,  // admission refused at arrival (no slot, or no replica up)
  };
  uint64_t id = 0;
  int64_t title = 0;
  int node = -1;
  // Arrival order doubles as priority: earlier viewers are failed over
  // first and shed last.
  int64_t priority = 0;
  double open_sec = 0.0;      // when the current stream was admitted
  double start_sec = 0.0;     // title position the current stream begins at
  double duration_sec = 0.0;  // remaining playback of the current stream
  double end_sec = 0.0;       // title position playback completes at
  SessionTicket ticket;
  State state = State::kViewing;
  double kill_sec = -1.0;  // when its node died with the stream live
  int failovers = 0;       // times this viewer resumed on another node
};

// Cluster-lifetime rollup, for benches and vafs_top.
struct ClusterCensus {
  int64_t admitted = 0;
  int64_t rejected = 0;
  int64_t finished = 0;
  int64_t failed_over = 0;  // viewers that resumed on a replica (>= once)
  int64_t shed = 0;
  int64_t nodes_killed = 0;
  int64_t nodes_restarted = 0;
  int64_t re_replications = 0;
  int64_t repair_blocks = 0;
  int64_t repair_failures = 0;
};

class ClusterCoordinator {
 public:
  explicit ClusterCoordinator(ClusterOptions options);

  // RECORD routing: places `title` on hot_replicas (hot) or cold_replicas
  // (cold) least-loaded nodes and records the seeded source on each.
  Status AddTitle(int64_t title, uint64_t seed, double duration_sec, bool hot);

  // Commits every node's catalog (image + fresh journal generation).
  Status CheckpointAll();

  // Drives the cluster to `until_sec` in lockstep epochs, feeding the
  // arrival trace (each arrival is one viewer of its title, full length)
  // and the failure schedule. May be called repeatedly to extend a run.
  void Run(const std::vector<sim::WorkloadArrival>& arrivals,
           const std::vector<sim::WorkloadOptions::NodeFailure>& failures, double until_sec);

  int nodes() const { return static_cast<int>(nodes_.size()); }
  StorageNode& node(int id) { return *nodes_[static_cast<size_t>(id)]; }
  const StorageNode& node(int id) const { return *nodes_[static_cast<size_t>(id)]; }

  const std::vector<ViewerRecord>& viewers() const { return viewers_; }
  // The rope id `title` carries on `node_id` (kNotFound when that node
  // holds no replica).
  Result<RopeId> ReplicaRope(int64_t title, int node_id) const;
  // Replicas of `title` currently on up nodes.
  int64_t LiveReplicas(int64_t title) const;
  const ClusterCensus& census() const { return census_; }
  const ClusterOptions& options() const { return options_; }

  // Cluster-level telemetry (node events, failovers, repair).
  obs::TraceLog& trace_log() { return trace_log_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  // True when the cluster auditor and every node's auditor are clean.
  bool AuditsClean() const;
  std::string AuditReport() const;

  // Per-node SLO rollup: {"version":1,"kind":"vafs.slo.cluster",
  // "nodes":[{"node":..,"state":..,"slo":<SloReport>},..]} — the shape
  // tools/check_slo.py accepts alongside flat single-node reports.
  std::string ClusterSloJson() const;

  // Determinism digest: every cluster event plus per-node and per-viewer
  // end state. Two runs of one seed must produce identical signatures for
  // any VAFS_WORKERS.
  std::string Signature() const;

 private:
  struct Title {
    uint64_t seed = 0;
    double duration_sec = 0.0;
    bool hot = false;
    int64_t target_replicas = 1;
    int64_t blocks = 0;      // video blocks (repair cost per replica)
    double block_sec = 0.0;  // playback time of one block
    std::map<int, RopeId> replicas;  // node id -> that node's rope
  };
  struct Death {
    int node = -1;
    double kill_sec = 0.0;
    double restart_sec = -1.0;  // < 0: stays dead
    bool detected = false;
    bool restarted = false;   // journal replayed; reconcile walk running
    bool reconciled = false;  // walk done; node readmitted (kNodeUp)
    int64_t reconcile_cursor = 0;  // titles walked so far
    int64_t verified = 0;
    int64_t dropped = 0;
  };

  SimTime EpochUsec() const;
  SimTime BoundUsec() const;
  double NowSec() const { return static_cast<double>(now_) / 1e6; }
  void Emit(obs::TraceEvent event);
  // Up replica holders of `title`, least-routed-load first (ties by id).
  std::vector<int> RouteCandidates(const Title& title) const;
  Status RecordReplica(Title* title, int node_id);
  // One control-loop boundary at now_: detect deaths, fail over, restart
  // and reconcile, repair, sweep finished viewers.
  void ProcessBoundary();
  void DetectDeath(Death* death);
  void TryFailovers();
  void TryRestart(Death* death);
  // Verifies up to reconcile_titles_per_epoch of the restarted node's
  // replicas per boundary; readmits the node when the walk completes.
  void ReconcileStep(Death* death);
  void RunRepairs();
  void SweepFinished();
  // Schedules arrivals and kills landing in [now_, now_ + epoch) on their
  // nodes' simulators, then advances every node to the window end.
  void RunWindow(const std::vector<sim::WorkloadArrival>& arrivals, size_t* next_arrival,
                 size_t* next_death);

  ClusterOptions options_;
  obs::TraceLog trace_log_;
  obs::MetricsRegistry metrics_;
  obs::MetricsSink metrics_sink_{&metrics_};
  obs::ContinuityAuditor auditor_;
  obs::TeeSink tee_;
  std::vector<std::unique_ptr<StorageNode>> nodes_;
  std::map<int64_t, Title> titles_;
  std::vector<ViewerRecord> viewers_;
  std::vector<Death> deaths_;  // every death ever scheduled (stable order)
  std::vector<uint64_t> pending_failover_;  // viewer ids awaiting a slot
  std::deque<int64_t> repair_queue_;        // titles under their target
  std::vector<int64_t> routed_load_;        // per node: viewers routed there
  ClusterCensus census_;
  int64_t repair_tokens_ = 0;
  int64_t repair_progress_ = 0;  // blocks already paid toward the queue head
  uint64_t next_viewer_ = 1;
  SimTime now_ = 0;  // last processed epoch boundary
};

}  // namespace cluster
}  // namespace vafs

#endif  // VAFS_SRC_CLUSTER_CLUSTER_H_
