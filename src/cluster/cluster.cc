#include "src/cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/media/sources.h"
#include "src/obs/span.h"
#include "src/util/time.h"

namespace vafs {
namespace cluster {

namespace {

// Viewer tags carry the cluster-wide viewer id into per-node traces.
std::string ViewerUser(uint64_t viewer) { return "viewer-" + std::to_string(viewer); }

// Salt separating routing-decision trace ids from the per-round id space
// (obs::RoundTraceId). One routing span tree per viewer placement.
constexpr uint64_t kRouteTraceSalt = 0x524f555445ULL;  // "ROUTE"

}  // namespace

const char* NodeStateName(NodeState state) {
  switch (state) {
    case NodeState::kUp:
      return "up";
    case NodeState::kDead:
      return "dead";
    case NodeState::kRecovering:
      return "recovering";
  }
  return "?";
}

StorageNode::StorageNode(int id, const FileSystemConfig& config, obs::TraceSink* extra_sink)
    : id_(id), auditor_(obs::AuditorOptions{.round_time_slack = 0.05}) {
  FileSystemConfig node_config = config;
  // The coordinator admits viewers through OpenSession and reads per-node
  // SLO rollups, so every node runs telemetry and the session layer.
  node_config.telemetry.enabled = true;
  node_config.sessions.enabled = true;
  // Node identity is woven into the node's trace/span ids, so cluster-wide
  // span streams never collide across nodes.
  node_config.telemetry.node_id = id;
  user_tee_.Add(&auditor_);
  if (config.scheduler.trace != nullptr) {
    user_tee_.Add(config.scheduler.trace);
  }
  if (extra_sink != nullptr) {
    user_tee_.Add(extra_sink);
  }
  node_config.scheduler.trace = &user_tee_;
  fs_ = std::make_unique<MultimediaFileSystem>(node_config);
}

ClusterCoordinator::ClusterCoordinator(ClusterOptions options)
    : options_(std::move(options)),
      trace_log_(0),
      repair_tokens_(options_.repair_token_burst) {
  tee_.Add(&trace_log_);
  tee_.Add(&metrics_sink_);
  tee_.Add(&auditor_);
  if (options_.trace != nullptr) {
    tee_.Add(options_.trace);
  }
  const int count = std::max(options_.nodes, 1);
  nodes_.reserve(static_cast<size_t>(count));
  for (int id = 0; id < count; ++id) {
    nodes_.push_back(std::make_unique<StorageNode>(id, options_.node_config, nullptr));
  }
  routed_load_.assign(static_cast<size_t>(count), 0);
}

SimTime ClusterCoordinator::EpochUsec() const { return SecondsToUsec(options_.epoch_sec); }

SimTime ClusterCoordinator::BoundUsec() const {
  return static_cast<SimTime>(std::max<int64_t>(options_.failover_bound_epochs, 1)) * EpochUsec();
}

void ClusterCoordinator::Emit(obs::TraceEvent event) {
  event.time = now_;
  tee_.OnEvent(event);
}

Status ClusterCoordinator::AddTitle(int64_t title, uint64_t seed, double duration_sec, bool hot) {
  if (titles_.find(title) != titles_.end()) {
    return Status(ErrorCode::kAlreadyExists,
                  "title " + std::to_string(title) + " already placed");
  }
  if (duration_sec <= 0.0) {
    return Status(ErrorCode::kInvalidArgument, "title duration must be positive");
  }
  Title entry;
  entry.seed = seed;
  entry.duration_sec = duration_sec;
  entry.hot = hot;
  entry.target_replicas =
      std::clamp<int64_t>(hot ? options_.hot_replicas : options_.cold_replicas, 1,
                          static_cast<int64_t>(nodes_.size()));
  Title& placed = titles_[title] = entry;

  // Replicas land on the nodes hosting the fewest replicas today (ties to
  // the lowest id), so the library spreads evenly and hot titles never
  // double up on one node.
  std::vector<int64_t> hosted(nodes_.size(), 0);
  for (const auto& [id, existing] : titles_) {
    for (const auto& [node_id, rope] : existing.replicas) {
      ++hosted[static_cast<size_t>(node_id)];
    }
  }
  for (int64_t r = 0; r < placed.target_replicas; ++r) {
    int best = -1;
    for (int id = 0; id < static_cast<int>(nodes_.size()); ++id) {
      if (nodes_[static_cast<size_t>(id)]->state() != NodeState::kUp ||
          placed.replicas.find(id) != placed.replicas.end()) {
        continue;
      }
      if (best < 0 || hosted[static_cast<size_t>(id)] < hosted[static_cast<size_t>(best)]) {
        best = id;
      }
    }
    if (best < 0) {
      break;  // fewer up nodes than the replication target
    }
    if (Status recorded = RecordReplica(&placed, best); !recorded.ok()) {
      return recorded;
    }
    ++hosted[static_cast<size_t>(best)];
  }
  if (placed.replicas.empty()) {
    titles_.erase(title);
    return Status(ErrorCode::kNoSpace, "no up node could host the title");
  }
  return Status::Ok();
}

Status ClusterCoordinator::RecordReplica(Title* title, int node_id) {
  MultimediaFileSystem& fs = nodes_[static_cast<size_t>(node_id)]->fs();
  VideoSource source(options_.media, title->seed);
  Result<MultimediaFileSystem::RecordResult> recorded =
      fs.Record("cluster", &source, nullptr, title->duration_sec);
  if (!recorded.ok()) {
    return recorded.status();
  }
  title->replicas[node_id] = recorded->rope;
  if (title->blocks == 0) {
    Result<const Rope*> rope = fs.rope_server().Find(recorded->rope);
    if (rope.ok()) {
      const Track& track = (*rope)->TrackFor(Medium::kVideo);
      const int64_t granularity = std::max<int64_t>(track.granularity, 1);
      title->blocks = (track.TotalUnits() + granularity - 1) / granularity;
    }
    title->blocks = std::max<int64_t>(title->blocks, 1);
    title->block_sec = title->duration_sec / static_cast<double>(title->blocks);
  }
  return Status::Ok();
}

Result<RopeId> ClusterCoordinator::ReplicaRope(int64_t title, int node_id) const {
  const auto title_it = titles_.find(title);
  if (title_it == titles_.end()) {
    return Status(ErrorCode::kNotFound, "unknown title " + std::to_string(title));
  }
  const auto replica = title_it->second.replicas.find(node_id);
  if (replica == title_it->second.replicas.end()) {
    return Status(ErrorCode::kNotFound, "node " + std::to_string(node_id) +
                                            " holds no replica of title " + std::to_string(title));
  }
  return replica->second;
}

int64_t ClusterCoordinator::LiveReplicas(int64_t title) const {
  const auto title_it = titles_.find(title);
  if (title_it == titles_.end()) {
    return 0;
  }
  int64_t live = 0;
  for (const auto& [node_id, rope] : title_it->second.replicas) {
    if (nodes_[static_cast<size_t>(node_id)]->state() == NodeState::kUp) {
      ++live;
    }
  }
  return live;
}

Status ClusterCoordinator::CheckpointAll() {
  for (const std::unique_ptr<StorageNode>& node : nodes_) {
    if (node->state() != NodeState::kUp) {
      continue;
    }
    if (Status committed = node->fs().Checkpoint(); !committed.ok()) {
      return committed;
    }
  }
  return Status::Ok();
}

std::vector<int> ClusterCoordinator::RouteCandidates(const Title& title) const {
  std::vector<int> candidates;
  for (const auto& [node_id, rope] : title.replicas) {
    if (nodes_[static_cast<size_t>(node_id)]->state() == NodeState::kUp) {
      candidates.push_back(node_id);
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(), [this](int a, int b) {
    const int64_t load_a = routed_load_[static_cast<size_t>(a)];
    const int64_t load_b = routed_load_[static_cast<size_t>(b)];
    return load_a != load_b ? load_a < load_b : a < b;
  });
  return candidates;
}

void ClusterCoordinator::Run(const std::vector<sim::WorkloadArrival>& arrivals,
                             const std::vector<sim::WorkloadOptions::NodeFailure>& failures,
                             double until_sec) {
  size_t next_death = deaths_.size();
  for (const sim::WorkloadOptions::NodeFailure& failure : failures) {
    if (failure.node < 0 || failure.node >= static_cast<int64_t>(nodes_.size())) {
      continue;
    }
    Death death;
    death.node = static_cast<int>(failure.node);
    death.kill_sec = failure.time_sec;
    death.restart_sec =
        failure.restart_after_sec < 0.0 ? -1.0 : failure.time_sec + failure.restart_after_sec;
    deaths_.push_back(death);
  }
  std::stable_sort(deaths_.begin() + static_cast<int64_t>(next_death), deaths_.end(),
                   [](const Death& a, const Death& b) {
                     return a.kill_sec != b.kill_sec ? a.kill_sec < b.kill_sec : a.node < b.node;
                   });

  size_t next_arrival = 0;
  const SimTime until = SecondsToUsec(until_sec);
  while (now_ < until) {
    RunWindow(arrivals, &next_arrival, &next_death);
    now_ += EpochUsec();
    ProcessBoundary();
  }
}

void ClusterCoordinator::RunWindow(const std::vector<sim::WorkloadArrival>& arrivals,
                                   size_t* next_arrival, size_t* next_death) {
  const SimTime window_end = now_ + EpochUsec();
  const double window_end_sec = static_cast<double>(window_end) / 1e6;

  // Kills land at their exact instant inside the window: the node's disk
  // stops answering mid-round and its streams degrade to skip-on-time
  // until the coordinator notices at the boundary.
  while (*next_death < deaths_.size() && deaths_[*next_death].kill_sec < window_end_sec) {
    const Death& death = deaths_[*next_death];
    ++*next_death;
    StorageNode* node = nodes_[static_cast<size_t>(death.node)].get();
    Disk* disk = &node->fs().disk();
    node->fs().simulator().ScheduleAt(SecondsToUsec(death.kill_sec),
                                      [disk]() { disk->set_failed(true); });
  }

  // Arrivals are routed at the window start (deterministic view of node
  // state) and admitted at their exact arrival instant on the owner.
  while (*next_arrival < arrivals.size() &&
         arrivals[*next_arrival].time_sec < window_end_sec) {
    const sim::WorkloadArrival& arrival = arrivals[*next_arrival];
    ++*next_arrival;
    ViewerRecord viewer;
    viewer.id = next_viewer_++;
    viewer.priority = static_cast<int64_t>(viewer.id);
    viewer.title = arrival.title;
    viewers_.push_back(viewer);
    ViewerRecord& record = viewers_.back();

    const auto title_it = titles_.find(arrival.title);
    if (title_it == titles_.end()) {
      record.state = ViewerRecord::State::kRejected;
      ++census_.rejected;
      continue;
    }
    const std::vector<int> candidates = RouteCandidates(title_it->second);
    if (candidates.empty()) {
      record.state = ViewerRecord::State::kRejected;  // every replica is down
      ++census_.rejected;
      continue;
    }
    const int node_id = candidates.front();
    ++routed_load_[static_cast<size_t>(node_id)];
    if (options_.node_config.telemetry.spans) {
      // Routing decision as a root span: the viewer's journey starts here,
      // before the chosen node's round spans pick the stream up.
      obs::TraceEvent route;
      route.kind = obs::TraceEventKind::kSpan;
      route.trace_id = obs::MixIds(kRouteTraceSalt, record.id);
      route.span_id = obs::RootSpanId(route.trace_id);
      route.span_stage = static_cast<int64_t>(obs::SpanStage::kRoute);
      route.node = node_id;
      route.session = record.id;
      route.detail = "arrival";
      Emit(route);
    }
    record.node = node_id;
    record.state = ViewerRecord::State::kPending;
    record.start_sec = 0.0;
    record.duration_sec = title_it->second.duration_sec;
    record.end_sec = title_it->second.duration_sec;

    StorageNode* node = nodes_[static_cast<size_t>(node_id)].get();
    const RopeId rope = title_it->second.replicas.at(node_id);
    const double duration = title_it->second.duration_sec;
    const size_t index = viewers_.size() - 1;
    node->fs().simulator().ScheduleAt(
        SecondsToUsec(arrival.time_sec), [this, node, rope, duration, index]() {
          ViewerRecord& pending = viewers_[index];
          Result<SessionTicket> ticket = node->fs().OpenSession(
              ViewerUser(pending.id), rope, Medium::kVideo, TimeInterval{0.0, duration});
          if (ticket.ok()) {
            pending.ticket = *ticket;
            pending.state = ViewerRecord::State::kViewing;
            pending.open_sec = static_cast<double>(node->fs().simulator().Now()) / 1e6;
            ++census_.admitted;
          } else {
            pending.state = ViewerRecord::State::kRejected;
            ++census_.rejected;
          }
        });
  }

  // Lockstep advance, fixed node order: cross-node determinism.
  for (const std::unique_ptr<StorageNode>& node : nodes_) {
    node->fs().simulator().RunUntil(window_end);
  }
}

void ClusterCoordinator::ProcessBoundary() {
  for (Death& death : deaths_) {
    if (!death.detected && SecondsToUsec(death.kill_sec) <= now_) {
      DetectDeath(&death);
    }
  }
  TryFailovers();
  for (Death& death : deaths_) {
    if (death.detected && !death.restarted && death.restart_sec >= 0.0 &&
        SecondsToUsec(death.restart_sec) <= now_) {
      TryRestart(&death);
    }
    if (death.restarted && !death.reconciled) {
      ReconcileStep(&death);
    }
  }
  RunRepairs();
  SweepFinished();
}

void ClusterCoordinator::DetectDeath(Death* death) {
  death->detected = true;
  StorageNode* node = nodes_[static_cast<size_t>(death->node)].get();
  if (node->state() != NodeState::kUp) {
    return;  // killed again while already down
  }
  node->set_state(NodeState::kDead);
  ++census_.nodes_killed;
  node->fs().disk().set_failed(true);  // the exact-time event already fired

  // Classify every viewer the coordinator routed there BEFORE fencing:
  // riders share their leader's request, and once the first Stop() retires
  // it the others would misread the stopped stream as a completed one.
  int64_t orphaned = 0;
  std::vector<ViewerRecord*> fenced;
  for (ViewerRecord& viewer : viewers_) {
    if (viewer.node != death->node || viewer.state != ViewerRecord::State::kViewing) {
      continue;
    }
    fenced.push_back(&viewer);
    Result<RequestStats> stats = node->fs().Stats(viewer.ticket.request);
    const double playhead = viewer.start_sec + (NowSec() - viewer.open_sec);
    if ((stats.ok() && stats->completed) || playhead >= viewer.end_sec) {
      viewer.state = ViewerRecord::State::kFinished;
      ++census_.finished;
      continue;
    }
    viewer.state = ViewerRecord::State::kPending;
    viewer.kill_sec = death->kill_sec;
    pending_failover_.push_back(viewer.id);
    ++orphaned;
  }
  for (ViewerRecord* viewer : fenced) {
    if (viewer->ticket.patch_request != 0) {
      (void)node->fs().Stop(viewer->ticket.patch_request);
    }
    (void)node->fs().Stop(viewer->ticket.request);  // shared leaders: first stop wins
  }

  // Every title with a replica on the dead node is now (possibly) under
  // its target; repair decides against live counts when tokens allow.
  for (const auto& [title_id, title] : titles_) {
    if (title.replicas.find(death->node) == title.replicas.end()) {
      continue;
    }
    if (std::find(repair_queue_.begin(), repair_queue_.end(), title_id) == repair_queue_.end()) {
      repair_queue_.push_back(title_id);
    }
  }

  obs::TraceEvent event;
  event.kind = obs::TraceEventKind::kNodeDown;
  event.node = death->node;
  event.blocks = orphaned;
  event.detail = "node " + std::to_string(death->node) + " declared dead; " +
                 std::to_string(orphaned) + " viewers to fail over";
  Emit(event);
}

void ClusterCoordinator::TryFailovers() {
  if (pending_failover_.empty()) {
    return;
  }
  // Highest priority (earliest arrival) first: when survivors cannot
  // absorb everyone, the viewers left to shed are the lowest-priority.
  std::sort(pending_failover_.begin(), pending_failover_.end());
  std::vector<uint64_t> still_pending;
  for (const uint64_t viewer_id : pending_failover_) {
    ViewerRecord& viewer = viewers_[static_cast<size_t>(viewer_id - 1)];
    if (viewer.state != ViewerRecord::State::kPending) {
      continue;
    }
    const Title& title = titles_.at(viewer.title);
    // The playback clock kept running through the outage (the dead node
    // skipped on time); resume at the playhead, not where the disk died.
    const double playhead = viewer.start_sec + (NowSec() - viewer.open_sec);
    if (playhead >= viewer.end_sec - 0.5 * title.block_sec) {
      viewer.state = ViewerRecord::State::kFinished;  // window ran out
      ++census_.finished;
      continue;
    }
    bool resumed = false;
    for (const int node_id : RouteCandidates(title)) {
      StorageNode* node = nodes_[static_cast<size_t>(node_id)].get();
      Result<SessionTicket> ticket =
          node->fs().OpenSession(ViewerUser(viewer.id), title.replicas.at(node_id),
                                 Medium::kVideo, TimeInterval{playhead, viewer.end_sec - playhead});
      if (!ticket.ok()) {
        continue;  // this survivor's Eq. 17 budget is full; try the next
      }
      const int from = viewer.node;
      viewer.node = node_id;
      viewer.ticket = *ticket;
      viewer.open_sec = NowSec();
      viewer.start_sec = playhead;
      viewer.duration_sec = viewer.end_sec - playhead;
      viewer.state = ViewerRecord::State::kViewing;
      if (viewer.failovers++ == 0) {
        ++census_.failed_over;
      }
      ++routed_load_[static_cast<size_t>(node_id)];
      if (options_.node_config.telemetry.spans) {
        // Re-routing decision: a child of the viewer's original routing
        // span, ordinal = how many times this viewer has moved.
        obs::TraceEvent route;
        route.kind = obs::TraceEventKind::kSpan;
        route.trace_id = obs::MixIds(kRouteTraceSalt, viewer.id);
        route.span_id = obs::ChildSpanId(obs::RootSpanId(route.trace_id), obs::SpanStage::kRoute,
                                         static_cast<uint64_t>(viewer.failovers));
        route.parent_span = obs::RootSpanId(route.trace_id);
        route.span_stage = static_cast<int64_t>(obs::SpanStage::kRoute);
        route.node = node_id;
        route.session = viewer.id;
        route.detail = "failover";
        Emit(route);
      }
      obs::TraceEvent event;
      event.kind = obs::TraceEventKind::kFailover;
      event.node = node_id;
      event.session = viewer.id;
      event.request = ticket->request;
      event.duration = now_ - SecondsToUsec(viewer.kill_sec);
      event.round_budget = BoundUsec();
      event.detail = "viewer " + std::to_string(viewer.id) + " resumed on node " +
                     std::to_string(node_id) + " (from node " + std::to_string(from) +
                     ") at t=" + std::to_string(playhead) + "s";
      Emit(event);
      resumed = true;
      break;
    }
    if (resumed) {
      continue;
    }
    // No survivor had room. Retry at the next boundary only if that
    // attempt can still land inside the stamped bound; otherwise shed
    // explicitly now — a viewer never dies silently.
    if (now_ + EpochUsec() - SecondsToUsec(viewer.kill_sec) > BoundUsec()) {
      viewer.state = ViewerRecord::State::kShed;
      ++census_.shed;
      obs::TraceEvent event;
      event.kind = obs::TraceEventKind::kShedLoad;
      event.node = viewer.node;
      event.session = viewer.id;
      event.round_budget = BoundUsec();
      event.detail = "viewer " + std::to_string(viewer.id) +
                     " shed: no survivor capacity within the failover bound";
      Emit(event);
    } else {
      still_pending.push_back(viewer_id);
    }
  }
  pending_failover_ = std::move(still_pending);
}

void ClusterCoordinator::TryRestart(Death* death) {
  death->restarted = true;
  StorageNode* node = nodes_[static_cast<size_t>(death->node)].get();
  node->fs().disk().set_failed(false);
  if (Status recovered = node->fs().Recover(); !recovered.ok()) {
    // Unrecoverable image: the node stays dead and repair re-replicates
    // around it.
    death->reconciled = true;
    return;
  }
  // Journal replayed; walk the catalog before readmitting the node.
  node->set_state(NodeState::kRecovering);
}

void ClusterCoordinator::ReconcileStep(Death* death) {
  StorageNode* node = nodes_[static_cast<size_t>(death->node)].get();
  if (node->state() != NodeState::kRecovering) {
    death->reconciled = true;
    return;
  }
  // The coordinator's title map iterates in recording order; each epoch
  // verifies the next slice of the node's replicas against its recovered
  // catalog, so readmission cost is bounded per epoch.
  int64_t walked = 0;
  int64_t cursor = 0;
  for (auto it = titles_.begin();
       it != titles_.end() && walked < options_.reconcile_titles_per_epoch; ++it, ++cursor) {
    if (cursor < death->reconcile_cursor) {
      continue;
    }
    death->reconcile_cursor = cursor + 1;
    ++walked;
    Title& title = it->second;
    const auto replica = title.replicas.find(death->node);
    if (replica == title.replicas.end()) {
      continue;
    }
    bool verified = false;
    Result<const Rope*> rope = node->fs().rope_server().Find(replica->second);
    if (rope.ok()) {
      const Track& track = (*rope)->TrackFor(Medium::kVideo);
      verified = !track.empty() && track.rate > 0.0 &&
                 std::abs(track.DurationSec() - title.duration_sec) <=
                     title.block_sec + 1e-9;
    }
    if (verified) {
      ++death->verified;
    } else {
      // The recovered image cannot substantiate this replica: drop it and
      // let background repair restore the count.
      title.replicas.erase(replica);
      ++death->dropped;
      if (std::find(repair_queue_.begin(), repair_queue_.end(), it->first) ==
          repair_queue_.end()) {
        repair_queue_.push_back(it->first);
      }
    }
  }
  if (death->reconcile_cursor < static_cast<int64_t>(titles_.size())) {
    return;  // more slices next epoch
  }
  death->reconciled = true;
  node->set_state(NodeState::kUp);
  ++census_.nodes_restarted;
  obs::TraceEvent event;
  event.kind = obs::TraceEventKind::kNodeUp;
  event.node = death->node;
  event.blocks = death->verified;
  event.detail = "node " + std::to_string(death->node) + " readmitted: " +
                 std::to_string(death->verified) + " replicas verified, " +
                 std::to_string(death->dropped) + " dropped to repair";
  Emit(event);
}

void ClusterCoordinator::RunRepairs() {
  repair_tokens_ = std::min(options_.repair_token_burst,
                            repair_tokens_ + options_.repair_tokens_per_epoch);
  while (!repair_queue_.empty()) {
    const int64_t title_id = repair_queue_.front();
    Title& title = titles_.at(title_id);
    int64_t live = 0;
    for (const auto& [node_id, rope] : title.replicas) {
      if (nodes_[static_cast<size_t>(node_id)]->state() == NodeState::kUp) {
        ++live;
      }
    }
    if (live >= title.target_replicas) {
      repair_queue_.pop_front();  // a restart brought the replica back
      repair_progress_ = 0;
      continue;
    }
    // Target: the up node not already holding the title with the fewest
    // hosted replicas (ties to the lowest id).
    std::vector<int64_t> hosted(nodes_.size(), 0);
    for (const auto& [id, existing] : titles_) {
      for (const auto& [node_id, rope] : existing.replicas) {
        ++hosted[static_cast<size_t>(node_id)];
      }
    }
    int target = -1;
    for (int id = 0; id < static_cast<int>(nodes_.size()); ++id) {
      if (nodes_[static_cast<size_t>(id)]->state() != NodeState::kUp ||
          title.replicas.find(id) != title.replicas.end()) {
        continue;
      }
      if (target < 0 || hosted[static_cast<size_t>(id)] < hosted[static_cast<size_t>(target)]) {
        target = id;
      }
    }
    if (target < 0) {
      break;  // no survivor can host it; retry after a restart
    }
    // Pay the copy down block by block from the bucket: a title larger
    // than one epoch's repair bandwidth completes over several epochs, so
    // recovery traffic per round stays bounded and never eats a live
    // stream's round budget.
    const int64_t paid = std::min(title.blocks - repair_progress_, repair_tokens_);
    repair_tokens_ -= paid;
    repair_progress_ += paid;
    if (repair_progress_ < title.blocks) {
      break;  // bucket drained: resume paying at the next boundary
    }
    repair_progress_ = 0;
    // The copy itself is a deterministic re-record of the seeded source.
    if (Status copied = RecordReplica(&title, target); !copied.ok()) {
      ++census_.repair_failures;
      repair_queue_.pop_front();
      continue;
    }
    ++census_.re_replications;
    census_.repair_blocks += title.blocks;
    obs::TraceEvent event;
    event.kind = obs::TraceEventKind::kReReplicate;
    event.node = target;
    event.blocks = title.blocks;
    event.detail = "title " + std::to_string(title_id) + " re-replicated to node " +
                   std::to_string(target) + " (" + std::to_string(live + 1) + "/" +
                   std::to_string(title.target_replicas) + " live)";
    Emit(event);
    if (live + 1 >= title.target_replicas) {
      repair_queue_.pop_front();
    }
  }
}

void ClusterCoordinator::SweepFinished() {
  std::fill(routed_load_.begin(), routed_load_.end(), 0);
  for (ViewerRecord& viewer : viewers_) {
    if (viewer.state != ViewerRecord::State::kViewing) {
      continue;
    }
    StorageNode* node = nodes_[static_cast<size_t>(viewer.node)].get();
    Result<RequestStats> stats = node->fs().Stats(viewer.ticket.request);
    const bool stream_done = stats.ok() && stats->completed;
    // Degraded riders deliver a prefix and fall silent; their playback
    // window still expires on the clock.
    const bool window_over = NowSec() >= viewer.open_sec + viewer.duration_sec + options_.epoch_sec;
    if (stream_done || window_over || !stats.ok()) {
      viewer.state = ViewerRecord::State::kFinished;
      ++census_.finished;
      continue;
    }
    ++routed_load_[static_cast<size_t>(viewer.node)];
  }
}

bool ClusterCoordinator::AuditsClean() const {
  if (!auditor_.Clean()) {
    return false;
  }
  for (const std::unique_ptr<StorageNode>& node : nodes_) {
    if (!node->auditor().Clean()) {
      return false;
    }
  }
  return true;
}

std::string ClusterCoordinator::AuditReport() const {
  std::string report;
  if (!auditor_.Clean()) {
    report += "cluster:\n" + auditor_.Report();
  }
  for (const std::unique_ptr<StorageNode>& node : nodes_) {
    if (!node->auditor().Clean()) {
      report += "node " + std::to_string(node->id()) + ":\n" + node->auditor().Report();
    }
  }
  return report.empty() ? "clean" : report;
}

std::string ClusterCoordinator::ClusterSloJson() const {
  std::string json = "{\"version\":1,\"kind\":\"vafs.slo.cluster\",\"nodes\":[";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) {
      json += ",";
    }
    json += "{\"node\":" + std::to_string(nodes_[i]->id()) + ",\"state\":\"" +
            NodeStateName(nodes_[i]->state()) + "\",\"slo\":" +
            nodes_[i]->fs().SloSnapshot().ToJson();
    const obs::CriticalPathAnalyzer* critical_path = nodes_[i]->fs().critical_path();
    if (critical_path != nullptr && !critical_path->rounds().empty()) {
      json += ",\"critical_path\":{\"rounds\":" + std::to_string(critical_path->rounds().size()) +
              ",\"anomalies\":" + std::to_string(critical_path->anomalies()) + "}";
    }
    json += "}";
  }
  json += "]}";
  return json;
}

std::string ClusterCoordinator::Signature() const {
  std::string signature;
  for (const obs::TraceEvent& event : trace_log_.events()) {
    signature += obs::TraceEventSummary(event);
    signature += '\n';
  }
  for (const std::unique_ptr<StorageNode>& node : nodes_) {
    const obs::SloReport report = node->fs().SloSnapshot();
    signature += "node " + std::to_string(node->id()) + ": state=" +
                 NodeStateName(node->state()) + " rounds=" + std::to_string(report.rounds_total) +
                 " streams=" + std::to_string(report.streams.size()) + "\n";
  }
  for (const ViewerRecord& viewer : viewers_) {
    signature += "viewer " + std::to_string(viewer.id) + ": title=" +
                 std::to_string(viewer.title) + " node=" + std::to_string(viewer.node) +
                 " state=" + std::to_string(static_cast<int>(viewer.state)) +
                 " failovers=" + std::to_string(viewer.failovers) + "\n";
  }
  signature += "census admitted=" + std::to_string(census_.admitted) +
               " rejected=" + std::to_string(census_.rejected) +
               " finished=" + std::to_string(census_.finished) +
               " failed_over=" + std::to_string(census_.failed_over) +
               " shed=" + std::to_string(census_.shed) +
               " repairs=" + std::to_string(census_.re_replications) + "\n";
  return signature;
}

}  // namespace cluster
}  // namespace vafs
